"""Write and storage radii (Section 2.1 of the paper).

For a node ``v`` let ``R^z_v`` be the ``z`` requests (reads *and* writes,
counted with multiplicity ``fr + fw``) closest to ``v`` and

    d(v, z) = (1/z) * sum_{r in R^z_v} ct(h(r), v)

their average distance.  Two radii steer the approximation algorithm:

* the **write radius** ``rw(v) = d(v, W)`` with ``W`` the total write
  count -- the scale at which a copy at ``v`` could plausibly amortize the
  update traffic it attracts;
* the **storage radius** ``rs(v)`` and **storage number** ``zs(v)``,
  chosen such that

      (zs(v) - 1) * rs(v) <= cs(v) < zs(v) * rs(v)       and
      d(v, zs(v) - 1)     <= rs(v) < d(v, zs(v)),

  the scale at which a copy at ``v`` amortizes its storage price.

The key computational observation is that ``z * d(v, z)`` equals the
*prefix sum* ``P_v(z)`` of the ``z`` smallest request distances, a
non-decreasing piecewise-linear function with at most ``n`` breakpoints, so

    zs(v) = min { integer z >= 1 : P_v(z) > cs(v) }

is found by binary search and the feasible interval for ``rs(v)`` is the
non-empty set ``(cs/zs, cs/(zs-1)] ∩ [d(v, zs-1), d(v, zs))`` (we take its
midpoint; any member satisfies the defining inequalities, and only the
``5 * rs(v)`` phase-2 threshold consumes the value).

Scaling note: everything here consumes the metric through *distance rows*.
:func:`radii_for_object` sweeps the nodes in blocks -- one batched
row fetch (a single compiled multi-source Dijkstra call on a
:class:`~repro.graphs.backend.LazyMetric`), then a fully vectorized
sort/cumsum per block -- so peak memory is ``O(block_size * n)`` instead of
the ``O(n^2)`` a full-matrix argsort would need.  :class:`RequestProfile`
offers the same quantities as a per-node oracle, computing and caching one
row at a time.

Degenerate cases, all unit-tested:

* ``W = 0`` (read-only): ``rw(v) = d(v, 0) = 0``.
* ``cs(v) >= P_v(N)`` (storage dearer than serving every request
  remotely): ``zs(v) = N`` and ``rs(v) = +inf`` -- the node never demands
  a nearby copy and phase 2 never fires for it.
* no requests at all: both radii follow the rules above (``rw = 0``,
  ``rs = +inf``); callers special-case zero-demand objects anyway.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["RequestProfile", "radii_for_object", "DEFAULT_RADII_BLOCK"]

#: Nodes per batched row fetch in :func:`radii_for_object`.  Peak scratch
#: memory is a handful of ``(block, n)`` arrays; 128 keeps a 10k-node sweep
#: under ~60 MB while still amortizing the per-call Dijkstra overhead.
DEFAULT_RADII_BLOCK = 128


def _sorted_cums(
    row: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-node prefix-sum state: sorted distances, cumulative weights,
    cumulative weighted distances."""
    order = np.argsort(row, kind="stable")
    sd = row[order]
    sw = weights[order]
    return sd, np.cumsum(sw), np.cumsum(sw * sd)


def _prefix_from_cums(
    sd: np.ndarray, cw: np.ndarray, cwd: np.ndarray, z: float, total: float
) -> float:
    """``P_v(z)`` evaluated from precomputed per-node cumulatives."""
    if z <= 0:
        return 0.0
    z = min(z, total)
    i = int(np.searchsorted(cw, z, side="left"))
    if i >= sd.size:  # float slack between total and cw[-1]
        i = sd.size - 1
    prev_w = cw[i - 1] if i > 0 else 0.0
    prev_wd = cwd[i - 1] if i > 0 else 0.0
    return float(prev_wd + (z - prev_w) * sd[i])


def _storage_radius_from_cums(
    sd: np.ndarray,
    cw: np.ndarray,
    cwd: np.ndarray,
    storage_cost: float,
    total: float,
) -> tuple[float, int]:
    """``(rs(v), zs(v))`` from one node's prefix-sum state."""
    if storage_cost < 0:
        raise ValueError("storage cost must be non-negative")
    n_req = int(math.ceil(total))
    if n_req == 0 or _prefix_from_cums(sd, cw, cwd, total, total) <= storage_cost:
        return math.inf, max(n_req, 1)

    # binary search the smallest integer z >= 1 with P_v(z) > cs
    lo, hi = 1, n_req
    while lo < hi:
        mid = (lo + hi) // 2
        if _prefix_from_cums(sd, cw, cwd, mid, total) > storage_cost:
            hi = mid
        else:
            lo = mid + 1
    zs = lo

    d_lo = _prefix_from_cums(sd, cw, cwd, zs - 1, total) / (zs - 1) if zs > 1 else 0.0
    d_hi = _prefix_from_cums(sd, cw, cwd, min(zs, total), total) / min(zs, total)
    lower = max(d_lo, storage_cost / zs)
    upper = min(d_hi, storage_cost / (zs - 1)) if zs > 1 else d_hi
    # The intersection is provably non-empty; guard against float slack.
    if upper < lower:
        upper = lower
    rs = 0.5 * (lower + upper) if upper > lower else lower
    return float(rs), int(zs)


class RequestProfile:
    """Per-node prefix-sum oracle over a weighted request multiset.

    Rows are computed on first use and cached per node, so the profile
    works against any :class:`~repro.graphs.backend.DistanceBackend`
    without touching the full matrix.  For whole-network sweeps prefer
    :func:`radii_for_object`, which batches the row fetches.

    Parameters
    ----------
    metric:
        Distance oracle.
    weights:
        Array of shape ``(n,)``: the request multiplicity at each node
        (``fr + fw`` for the Section 2 radii).
    """

    def __init__(self, metric, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (metric.n,):
            raise ValueError(f"weights must have shape ({metric.n},)")
        if np.any(weights < 0):
            raise ValueError("request weights must be non-negative")
        self.metric = metric
        self.weights = weights
        self.total = float(weights.sum())
        self._cums: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    def _node_cums(self, v: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        state = self._cums.get(v)
        if state is None:
            state = _sorted_cums(np.asarray(self.metric.row(v)), self.weights)
            self._cums[v] = state
        return state

    # ------------------------------------------------------------------
    def prefix(self, v: int, z: float) -> float:
        """``P_v(z)``: summed distance of the ``z`` closest requests.

        ``z`` may be fractional (a request is split linearly); ``z`` is
        clamped to ``[0, total]``.
        """
        sd, cw, cwd = self._node_cums(v)
        return _prefix_from_cums(sd, cw, cwd, z, self.total)

    def avg_dist(self, v: int, z: float) -> float:
        """``d(v, z)``, with the convention ``d(v, 0) = 0``."""
        if z <= 0:
            return 0.0
        z = min(z, self.total)
        return self.prefix(v, z) / z

    # ------------------------------------------------------------------
    def write_radius(self, v: int, total_writes: float) -> float:
        """``rw(v) = d(v, W)``."""
        return self.avg_dist(v, total_writes)

    def storage_radius(self, v: int, storage_cost: float) -> tuple[float, int]:
        """``(rs(v), zs(v))`` for the given storage price ``cs(v)``.

        Returns ``(inf, ceil(total))`` when storage never amortizes (see
        module docstring).
        """
        sd, cw, cwd = self._node_cums(v)
        return _storage_radius_from_cums(sd, cw, cwd, storage_cost, self.total)


def radii_for_object(
    metric,
    storage_costs: np.ndarray,
    read_freq: np.ndarray,
    write_freq: np.ndarray,
    *,
    block_size: int = DEFAULT_RADII_BLOCK,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All radii for one object: ``(rw, rs, zs)`` arrays over nodes.

    The request multiset weighs each node by ``fr + fw`` (writes count as
    requests both for the write radius and the storage radius -- the
    restricted-cost view folds the write attach message into read cost).

    Nodes are processed in blocks of ``block_size``: one batched distance
    row fetch per block, then vectorized sorting and prefix sums, so the
    sweep never holds more than ``O(block_size * n)`` scratch.
    """
    if block_size < 1:
        raise ValueError("block_size must be positive")
    weights = np.asarray(read_freq, dtype=float) + np.asarray(write_freq, dtype=float)
    if np.any(weights < 0):
        raise ValueError("request weights must be non-negative")
    total = float(weights.sum())
    total_writes = float(np.asarray(write_freq, dtype=float).sum())
    storage_costs = np.asarray(storage_costs, dtype=float)

    n = metric.n
    rw = np.empty(n)
    rs = np.empty(n)
    zs = np.empty(n, dtype=int)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        block = np.arange(start, stop)
        # Scratch is freed as soon as each array stops being needed and the
        # cumsums run in place, so the block never holds more than three
        # (b, n) arrays at once.
        D = np.asarray(metric.rows(block))  # (b, n)
        order = np.argsort(D, axis=1, kind="stable")
        SD = np.take_along_axis(D, order, axis=1)
        del D
        SW = weights[order]
        del order
        CWD = SW * SD
        np.cumsum(CWD, axis=1, out=CWD)
        CW = np.cumsum(SW, axis=1, out=SW)
        del SW

        if total_writes > 0:
            rw[block] = _prefix_block(SD, CW, CWD, total_writes, total) / total_writes
        else:
            rw[block] = 0.0
        for j, v in enumerate(block):
            rs[v], zs[v] = _storage_radius_from_cums(
                SD[j], CW[j], CWD[j], float(storage_costs[v]), total
            )
    return rw, rs, zs


def _prefix_block(
    SD: np.ndarray, CW: np.ndarray, CWD: np.ndarray, z: float, total: float
) -> np.ndarray:
    """Vectorized ``P_v(z)`` for a block of nodes at one common ``z``."""
    b, n = SD.shape
    if z <= 0:
        return np.zeros(b)
    z = min(z, total)
    # searchsorted(cw, z, 'left') per row == count of entries < z
    i = np.minimum((CW < z).sum(axis=1), n - 1)
    r = np.arange(b)
    prev_w = np.where(i > 0, CW[r, np.maximum(i - 1, 0)], 0.0)
    prev_wd = np.where(i > 0, CWD[r, np.maximum(i - 1, 0)], 0.0)
    return prev_wd + (z - prev_w) * SD[r, i]
