"""Write and storage radii (Section 2.1 of the paper).

For a node ``v`` let ``R^z_v`` be the ``z`` requests (reads *and* writes,
counted with multiplicity ``fr + fw``) closest to ``v`` and

    d(v, z) = (1/z) * sum_{r in R^z_v} ct(h(r), v)

their average distance.  Two radii steer the approximation algorithm:

* the **write radius** ``rw(v) = d(v, W)`` with ``W`` the total write
  count -- the scale at which a copy at ``v`` could plausibly amortize the
  update traffic it attracts;
* the **storage radius** ``rs(v)`` and **storage number** ``zs(v)``,
  chosen such that

      (zs(v) - 1) * rs(v) <= cs(v) < zs(v) * rs(v)       and
      d(v, zs(v) - 1)     <= rs(v) < d(v, zs(v)),

  the scale at which a copy at ``v`` amortizes its storage price.

The key computational observation is that ``z * d(v, z)`` equals the
*prefix sum* ``P_v(z)`` of the ``z`` smallest request distances, a
non-decreasing piecewise-linear function with at most ``n`` breakpoints, so

    zs(v) = min { integer z >= 1 : P_v(z) > cs(v) }

is found by binary search and the feasible interval for ``rs(v)`` is the
non-empty set ``(cs/zs, cs/(zs-1)] ∩ [d(v, zs-1), d(v, zs))`` (we take its
midpoint; any member satisfies the defining inequalities, and only the
``5 * rs(v)`` phase-2 threshold consumes the value).

Scaling note: everything here consumes the metric through *distance rows*.
:func:`radii_for_object` sweeps the nodes in blocks -- one batched
row fetch (a single compiled multi-source Dijkstra call on a
:class:`~repro.graphs.backend.LazyMetric`), then a fully vectorized
sort/cumsum per block -- so peak memory is ``O(block_size * n)`` instead of
the ``O(n^2)`` a full-matrix argsort would need.  :class:`RequestProfile`
offers the same quantities as a per-node oracle, computing and caching one
row at a time.

Catalog note: the sorted order of each distance row depends only on the
metric, never on the workload, so a multi-object catalog can share one
row fetch *and one argsort* per node block across every object
(:func:`radii_for_objects`).  For integer request counts -- the model's
semantics -- the sweep additionally restricts each object's prefix-sum
state to the nodes that actually issue requests (its *demand support*):
zero-weight entries contribute exactly ``0.0`` to every cumulative sum
and are provably skipped by the breakpoint searches, so the restricted
state yields bit-identical radii at a fraction of the work.  Fractional
weights fall back to the shared-argsort dense path, which replays the
per-object arithmetic verbatim.

Degenerate cases, all unit-tested:

* ``W = 0`` (read-only): ``rw(v) = d(v, 0) = 0``.
* ``cs(v) >= P_v(N)`` (storage dearer than serving every request
  remotely): ``zs(v) = N`` and ``rs(v) = +inf`` -- the node never demands
  a nearby copy and phase 2 never fires for it.
* no requests at all: both radii follow the rules above (``rw = 0``,
  ``rs = +inf``); callers special-case zero-demand objects anyway.
"""

from __future__ import annotations

import math

import numpy as np

from ..kernels import dispatch

__all__ = [
    "RequestProfile",
    "radii_for_object",
    "radii_for_objects",
    "DEFAULT_RADII_BLOCK",
]

#: Nodes per batched row fetch in :func:`radii_for_object`.  Peak scratch
#: memory is a handful of ``(block, n)`` arrays; 128 keeps a 10k-node sweep
#: under ~60 MB while still amortizing the per-call Dijkstra overhead.
DEFAULT_RADII_BLOCK = 128

#: :func:`radii_for_objects` handles a sparse object in one whole-network
#: pass (instead of the node-block loop) while its ``(n, nnz)`` state
#: stays under this many elements (~32 MB of float64 scratch).
_SINGLE_SWEEP_ELEMS = 4_000_000


def _sorted_cums(
    row: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-node prefix-sum state: sorted distances, cumulative weights,
    cumulative weighted distances."""
    order = np.argsort(row, kind="stable")
    sd = row[order]
    sw = weights[order]
    return sd, np.cumsum(sw), np.cumsum(sw * sd)


def _prefix_from_cums(
    sd: np.ndarray, cw: np.ndarray, cwd: np.ndarray, z: float, total: float
) -> float:
    """``P_v(z)`` evaluated from precomputed per-node cumulatives."""
    if z <= 0:
        return 0.0
    z = min(z, total)
    i = int(np.searchsorted(cw, z, side="left"))
    if i >= sd.size:  # float slack between total and cw[-1]
        i = sd.size - 1
    prev_w = cw[i - 1] if i > 0 else 0.0
    prev_wd = cwd[i - 1] if i > 0 else 0.0
    return float(prev_wd + (z - prev_w) * sd[i])


def _storage_radius_from_cums(
    sd: np.ndarray,
    cw: np.ndarray,
    cwd: np.ndarray,
    storage_cost: float,
    total: float,
) -> tuple[float, int]:
    """``(rs(v), zs(v))`` from one node's prefix-sum state."""
    if storage_cost < 0:
        raise ValueError("storage cost must be non-negative")
    n_req = int(math.ceil(total))
    if n_req == 0 or _prefix_from_cums(sd, cw, cwd, total, total) <= storage_cost:
        return math.inf, max(n_req, 1)

    # binary search the smallest integer z >= 1 with P_v(z) > cs
    lo, hi = 1, n_req
    while lo < hi:
        mid = (lo + hi) // 2
        if _prefix_from_cums(sd, cw, cwd, mid, total) > storage_cost:
            hi = mid
        else:
            lo = mid + 1
    zs = lo

    d_lo = _prefix_from_cums(sd, cw, cwd, zs - 1, total) / (zs - 1) if zs > 1 else 0.0
    d_hi = _prefix_from_cums(sd, cw, cwd, min(zs, total), total) / min(zs, total)
    lower = max(d_lo, storage_cost / zs)
    upper = min(d_hi, storage_cost / (zs - 1)) if zs > 1 else d_hi
    # The intersection is provably non-empty; guard against float slack.
    if upper < lower:
        upper = lower
    rs = 0.5 * (lower + upper) if upper > lower else lower
    return float(rs), int(zs)


class RequestProfile:
    """Per-node prefix-sum oracle over a weighted request multiset.

    Rows are computed on first use and cached per node, so the profile
    works against any :class:`~repro.graphs.backend.DistanceBackend`
    without touching the full matrix.  For whole-network sweeps prefer
    :func:`radii_for_object`, which batches the row fetches.

    Parameters
    ----------
    metric:
        Distance oracle.
    weights:
        Array of shape ``(n,)``: the request multiplicity at each node
        (``fr + fw`` for the Section 2 radii).
    """

    def __init__(self, metric, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (metric.n,):
            raise ValueError(f"weights must have shape ({metric.n},)")
        if np.any(weights < 0):
            raise ValueError("request weights must be non-negative")
        self.metric = metric
        self.weights = weights
        self.total = float(weights.sum())
        self._cums: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    def _node_cums(self, v: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        state = self._cums.get(v)
        if state is None:
            state = _sorted_cums(np.asarray(self.metric.row(v)), self.weights)
            self._cums[v] = state
        return state

    # ------------------------------------------------------------------
    def prefix(self, v: int, z: float) -> float:
        """``P_v(z)``: summed distance of the ``z`` closest requests.

        ``z`` may be fractional (a request is split linearly); ``z`` is
        clamped to ``[0, total]``.
        """
        sd, cw, cwd = self._node_cums(v)
        return _prefix_from_cums(sd, cw, cwd, z, self.total)

    def avg_dist(self, v: int, z: float) -> float:
        """``d(v, z)``, with the convention ``d(v, 0) = 0``."""
        if z <= 0:
            return 0.0
        z = min(z, self.total)
        return self.prefix(v, z) / z

    # ------------------------------------------------------------------
    def write_radius(self, v: int, total_writes: float) -> float:
        """``rw(v) = d(v, W)``."""
        return self.avg_dist(v, total_writes)

    def storage_radius(self, v: int, storage_cost: float) -> tuple[float, int]:
        """``(rs(v), zs(v))`` for the given storage price ``cs(v)``.

        Returns ``(inf, ceil(total))`` when storage never amortizes (see
        module docstring).
        """
        sd, cw, cwd = self._node_cums(v)
        return _storage_radius_from_cums(sd, cw, cwd, storage_cost, self.total)


def radii_for_object(
    metric,
    storage_costs: np.ndarray,
    read_freq: np.ndarray,
    write_freq: np.ndarray,
    *,
    block_size: int = DEFAULT_RADII_BLOCK,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All radii for one object: ``(rw, rs, zs)`` arrays over nodes.

    The request multiset weighs each node by ``fr + fw`` (writes count as
    requests both for the write radius and the storage radius -- the
    restricted-cost view folds the write attach message into read cost).

    Nodes are processed in blocks of ``block_size``: one batched distance
    row fetch per block, then vectorized sorting and prefix sums, so the
    sweep never holds more than ``O(block_size * n)`` scratch.  The
    breakpoint searches run as per-row kernels dispatched through
    :mod:`repro.kernels`, replaying the scalar
    :func:`_storage_radius_from_cums` arithmetic exactly.
    """
    if block_size < 1:
        raise ValueError("block_size must be positive")
    weights = np.asarray(read_freq, dtype=float) + np.asarray(write_freq, dtype=float)
    if np.any(weights < 0):
        raise ValueError("request weights must be non-negative")
    total = float(weights.sum())
    total_writes = float(np.asarray(write_freq, dtype=float).sum())
    storage_costs = np.asarray(storage_costs, dtype=float)
    if np.any(storage_costs < 0):
        raise ValueError("storage cost must be non-negative")

    n = metric.n
    rw = np.empty(n)
    rs = np.empty(n)
    zs = np.empty(n, dtype=int)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        block = np.arange(start, stop)
        # Scratch is freed as soon as each array stops being needed and the
        # cumsums run in place, so the block never holds more than three
        # (b, n) arrays at once.
        D = np.asarray(metric.rows(block))  # (b, n)
        order = np.argsort(D, axis=1, kind="stable")
        SD = np.take_along_axis(D, order, axis=1)
        del D
        SW = weights[order]
        del order
        rw[block], rs[block], zs[block] = _radii_from_sorted(
            SD, SW, storage_costs[block], total_writes, total
        )
    return rw, rs, zs


def radii_for_objects(
    metric,
    storage_costs: np.ndarray,
    read_freq: np.ndarray,
    write_freq: np.ndarray,
    *,
    block_size: int = DEFAULT_RADII_BLOCK,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Radii for a whole object batch: ``(rw, rs, zs)`` of shape ``(m, n)``.

    One shared backend sweep serves every object: each node block's
    distance rows are fetched once (one compiled Dijkstra call on a lazy
    backend, a view on a dense one) and, where the full sort is needed,
    argsorted once -- instead of once *per object* as the naive
    ``[radii_for_object(...) for obj in ...]`` loop does.

    Per object the prefix-sum state is then built either

    * on the object's *demand support* (the nodes with ``fr + fw > 0``)
      when every frequency is an integer count -- bit-identical to the
      full-width state (zero weights add exactly ``0.0`` to every
      cumulative sum and the crossing searches provably never land on
      them) at ``O(block * nnz)`` instead of ``O(block * n)``, or
    * on the shared full argsort otherwise (fractional weights), which is
      the per-object computation verbatim.

    Returns arrays indexed ``[obj, node]``; callers placing huge catalogs
    should chunk objects and call this per chunk (see
    :class:`repro.engine.PlacementEngine`) so only ``O(chunk * n)`` radii
    are live at once.
    """
    if block_size < 1:
        raise ValueError("block_size must be positive")
    FR = np.atleast_2d(np.asarray(read_freq, dtype=float))
    FW = np.atleast_2d(np.asarray(write_freq, dtype=float))
    if FR.shape != FW.shape:
        raise ValueError("read_freq and write_freq must have equal shapes")
    weights = FR + FW
    if np.any(weights < 0):
        raise ValueError("request weights must be non-negative")
    storage_costs = np.asarray(storage_costs, dtype=float)
    if np.any(storage_costs < 0):
        raise ValueError("storage cost must be non-negative")
    m, n = weights.shape
    if n != metric.n:
        raise ValueError(f"frequency arrays must have {metric.n} columns")

    # Per-object totals via the exact same reductions as radii_for_object
    # (1-D row sums), so every downstream comparison sees the same floats.
    totals = [float(weights[i].sum()) for i in range(m)]
    wtotals = [float(FW[i].sum()) for i in range(m)]
    integral = bool(
        np.all(np.floor(FR) == FR) and np.all(np.floor(FW) == FW)
    )
    supports = [np.flatnonzero(weights[i]) if integral else None for i in range(m)]

    def use_support(i: int) -> bool:
        supp = supports[i]
        return supp is not None and 0 < supp.size < n

    RW = np.empty((m, n))
    RS = np.empty((m, n))
    ZS = np.empty((m, n), dtype=int)
    live = [i for i in range(m) if totals[i] > 0]
    # Zero-demand objects never consult the sweep: rw = 0, rs = inf, zs = 1
    # (the radii_for_object degenerate case).
    for i in range(m):
        if totals[i] <= 0:
            RW[i] = 0.0
            RS[i] = np.inf
            ZS[i] = 1

    # Sparse objects on a dense backend skip the node-block loop entirely:
    # the (n, nnz) column slice is small, so one whole-network pass per
    # object avoids per-block Python overhead.  Blocking never changes
    # values (every kernel is an independent per-row computation), so this
    # is purely a batching choice.
    dense = getattr(metric, "dist", None)
    if dense is not None:
        single = [
            i for i in live
            if use_support(i) and n * supports[i].size <= _SINGLE_SWEEP_ELEMS
        ]
        for i in single:
            supp = supports[i]
            Ds = dense[:, supp]
            order = np.argsort(Ds, axis=1, kind="stable")
            SD = np.take_along_axis(Ds, order, axis=1)
            SW = weights[i, supp][order]
            RW[i], RS[i], ZS[i] = _radii_from_sorted(
                SD, SW, storage_costs, wtotals[i], totals[i]
            )
        done = set(single)
        live = [i for i in live if i not in done]
        if not live:
            return RW, RS, ZS
    need_full = any(not use_support(i) for i in live)

    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        block = np.arange(start, stop)
        D = np.asarray(metric.rows(block))  # (b, n), fetched once per block
        cs_block = storage_costs[block]
        if need_full:
            order_full = np.argsort(D, axis=1, kind="stable")
            SD_full = np.take_along_axis(D, order_full, axis=1)
        for i in live:
            if use_support(i):
                supp = supports[i]
                Ds = D[:, supp]
                order = np.argsort(Ds, axis=1, kind="stable")
                SD = np.take_along_axis(Ds, order, axis=1)
                SW = weights[i, supp][order]
            else:
                SD = SD_full
                SW = weights[i][order_full]
            RW[i, block], RS[i, block], ZS[i, block] = _radii_from_sorted(
                SD, SW, cs_block, wtotals[i], totals[i]
            )
    return RW, RS, ZS


def _radii_from_sorted(
    SD: np.ndarray,
    SW: np.ndarray,
    costs: np.ndarray,
    total_writes: float,
    total: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(rw, rs, zs)`` rows from distance-sorted block state.

    The one shared kernel stack behind :func:`radii_for_object` and both
    :func:`radii_for_objects` sweeps: cumulative sums (``SW`` may be
    consumed), the write-radius prefix and the storage-radius search --
    each resolved through :func:`repro.kernels.dispatch`, so the same
    call sites run the numpy reference or its bit-identical compiled
    twin depending on the active kernel mode.  Keeping the stack
    single-sourced is what keeps the bit-parity contract between the
    per-object and batched paths a structural property.
    """
    CW, CWD = dispatch("radii_cums")(SD, SW)
    if total_writes > 0:
        b = SD.shape[0]
        z = np.full(b, float(total_writes))
        rw = dispatch("radii_prefix")(SD, CW, CWD, z, total) / total_writes
    else:
        rw = np.zeros(SD.shape[0])
    rs, zs = dispatch("radii_storage")(SD, CW, CWD, costs, total)
    return rw, rs, zs
