"""Write and storage radii (Section 2.1 of the paper).

For a node ``v`` let ``R^z_v`` be the ``z`` requests (reads *and* writes,
counted with multiplicity ``fr + fw``) closest to ``v`` and

    d(v, z) = (1/z) * sum_{r in R^z_v} ct(h(r), v)

their average distance.  Two radii steer the approximation algorithm:

* the **write radius** ``rw(v) = d(v, W)`` with ``W`` the total write
  count -- the scale at which a copy at ``v`` could plausibly amortize the
  update traffic it attracts;
* the **storage radius** ``rs(v)`` and **storage number** ``zs(v)``,
  chosen such that

      (zs(v) - 1) * rs(v) <= cs(v) < zs(v) * rs(v)       and
      d(v, zs(v) - 1)     <= rs(v) < d(v, zs(v)),

  the scale at which a copy at ``v`` amortizes its storage price.

The key computational observation is that ``z * d(v, z)`` equals the
*prefix sum* ``P_v(z)`` of the ``z`` smallest request distances, a
non-decreasing piecewise-linear function with at most ``n`` breakpoints, so

    zs(v) = min { integer z >= 1 : P_v(z) > cs(v) }

is found by binary search and the feasible interval for ``rs(v)`` is the
non-empty set ``(cs/zs, cs/(zs-1)] ∩ [d(v, zs-1), d(v, zs))`` (we take its
midpoint; any member satisfies the defining inequalities, and only the
``5 * rs(v)`` phase-2 threshold consumes the value).

Degenerate cases, all unit-tested:

* ``W = 0`` (read-only): ``rw(v) = d(v, 0) = 0``.
* ``cs(v) >= P_v(N)`` (storage dearer than serving every request
  remotely): ``zs(v) = N`` and ``rs(v) = +inf`` -- the node never demands
  a nearby copy and phase 2 never fires for it.
* no requests at all: both radii follow the rules above (``rw = 0``,
  ``rs = +inf``); callers special-case zero-demand objects anyway.
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.metric import Metric

__all__ = ["RequestProfile", "radii_for_object"]


class RequestProfile:
    """Per-node prefix-sum oracle over a weighted request multiset.

    Parameters
    ----------
    metric:
        Distance oracle.
    weights:
        Array of shape ``(n,)``: the request multiplicity at each node
        (``fr + fw`` for the Section 2 radii).
    """

    def __init__(self, metric: Metric, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (metric.n,):
            raise ValueError(f"weights must have shape ({metric.n},)")
        if np.any(weights < 0):
            raise ValueError("request weights must be non-negative")
        self.metric = metric
        self.weights = weights
        self.total = float(weights.sum())

        order = np.argsort(metric.dist, axis=1, kind="stable")
        self._sorted_dist = np.take_along_axis(metric.dist, order, axis=1)
        sorted_w = weights[order]
        self._cum_w = np.cumsum(sorted_w, axis=1)
        self._cum_wd = np.cumsum(sorted_w * self._sorted_dist, axis=1)

    # ------------------------------------------------------------------
    def prefix(self, v: int, z: float) -> float:
        """``P_v(z)``: summed distance of the ``z`` closest requests.

        ``z`` may be fractional (a request is split linearly); ``z`` is
        clamped to ``[0, total]``.
        """
        if z <= 0:
            return 0.0
        z = min(z, self.total)
        cw = self._cum_w[v]
        # first segment whose cumulative weight reaches z
        i = int(np.searchsorted(cw, z, side="left"))
        prev_w = cw[i - 1] if i > 0 else 0.0
        prev_wd = self._cum_wd[v][i - 1] if i > 0 else 0.0
        return float(prev_wd + (z - prev_w) * self._sorted_dist[v, i])

    def avg_dist(self, v: int, z: float) -> float:
        """``d(v, z)``, with the convention ``d(v, 0) = 0``."""
        if z <= 0:
            return 0.0
        z = min(z, self.total)
        return self.prefix(v, z) / z

    # ------------------------------------------------------------------
    def write_radius(self, v: int, total_writes: float) -> float:
        """``rw(v) = d(v, W)``."""
        return self.avg_dist(v, total_writes)

    def storage_radius(self, v: int, storage_cost: float) -> tuple[float, int]:
        """``(rs(v), zs(v))`` for the given storage price ``cs(v)``.

        Returns ``(inf, ceil(total))`` when storage never amortizes (see
        module docstring).
        """
        if storage_cost < 0:
            raise ValueError("storage cost must be non-negative")
        n_req = int(math.ceil(self.total))
        if n_req == 0 or self.prefix(v, self.total) <= storage_cost:
            return math.inf, max(n_req, 1)

        # binary search the smallest integer z >= 1 with P_v(z) > cs
        lo, hi = 1, n_req
        while lo < hi:
            mid = (lo + hi) // 2
            if self.prefix(v, mid) > storage_cost:
                hi = mid
            else:
                lo = mid + 1
        zs = lo

        d_lo = self.avg_dist(v, zs - 1)
        d_hi = self.avg_dist(v, zs)
        lower = max(d_lo, storage_cost / zs)
        upper = min(d_hi, storage_cost / (zs - 1)) if zs > 1 else d_hi
        # The intersection is provably non-empty; guard against float slack.
        if upper < lower:
            upper = lower
        rs = 0.5 * (lower + upper) if upper > lower else lower
        return float(rs), int(zs)


def radii_for_object(
    metric: Metric,
    storage_costs: np.ndarray,
    read_freq: np.ndarray,
    write_freq: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All radii for one object: ``(rw, rs, zs)`` arrays over nodes.

    The request multiset weighs each node by ``fr + fw`` (writes count as
    requests both for the write radius and the storage radius -- the
    restricted-cost view folds the write attach message into read cost).
    """
    weights = np.asarray(read_freq, dtype=float) + np.asarray(write_freq, dtype=float)
    profile = RequestProfile(metric, weights)
    total_writes = float(np.asarray(write_freq, dtype=float).sum())

    n = metric.n
    rw = np.empty(n)
    rs = np.empty(n)
    zs = np.empty(n, dtype=int)
    for v in range(n):
        rw[v] = profile.write_radius(v, total_writes)
        rs[v], zs[v] = profile.storage_radius(v, float(storage_costs[v]))
    return rw, rs, zs
