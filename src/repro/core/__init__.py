"""Core: the paper's algorithms and cost model.

* :mod:`instance`, :mod:`placement`, :mod:`costs` -- the static data
  management problem and its exact cost accounting;
* :mod:`radii` -- write/storage radii (Section 2.1);
* :mod:`approx` -- the constant-factor approximation for arbitrary
  networks (Section 2.2, Theorem 7);
* :mod:`restricted` -- restricted placements and the Lemma 1 transform;
* :mod:`capacity` -- memory-capacity repair (the related-work extension);
* :mod:`envelope`, :mod:`tree_binarize`, :mod:`tree_dp` -- the optimal
  tree algorithm (Section 3, Theorem 13);
* :mod:`tree_dp_readonly` -- an independent, paper-literal implementation
  of the Section 3.1 read-only tuple algorithm (cross-validation).
"""

from .approx import (
    K1,
    K2,
    ApproxDiagnostics,
    approximate_object_placement,
    approximate_placement,
    proper_placement_margins,
)
from .capacity import capacity_violations, enforce_capacities
from .costs import UPDATE_POLICIES, CostBreakdown, object_cost, placement_cost
from .envelope import Line, LowerEnvelope
from .instance import DataManagementInstance
from .placement import Placement, serving_nodes, update_tree_edges
from .radii import RequestProfile, radii_for_object
from .restricted import is_restricted, requests_served_per_copy, restrict_placement
from .tree_binarize import BinaryNode, BinaryTreeInstance, binarize_tree
from .tree_dp import TreeOptimum, optimal_tree_object_placement, optimal_tree_placement
from .tree_dp_readonly import (
    optimal_tree_object_placement_readonly,
    optimal_tree_placement_readonly,
)

__all__ = [
    "DataManagementInstance",
    "Placement",
    "serving_nodes",
    "update_tree_edges",
    "CostBreakdown",
    "object_cost",
    "placement_cost",
    "UPDATE_POLICIES",
    "capacity_violations",
    "enforce_capacities",
    "RequestProfile",
    "radii_for_object",
    "approximate_placement",
    "approximate_object_placement",
    "ApproxDiagnostics",
    "proper_placement_margins",
    "K1",
    "K2",
    "is_restricted",
    "requests_served_per_copy",
    "restrict_placement",
    "Line",
    "LowerEnvelope",
    "BinaryNode",
    "BinaryTreeInstance",
    "binarize_tree",
    "TreeOptimum",
    "optimal_tree_object_placement",
    "optimal_tree_placement",
    "optimal_tree_object_placement_readonly",
    "optimal_tree_placement_readonly",
]
