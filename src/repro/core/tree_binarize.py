"""Binarization of arbitrary trees for the Section 3 dynamic program.

The paper's DP is stated for binary trees; "it is easy to see that an
arbitrary tree T can be simulated on a binary tree with O(|T|) nodes and
diameter O(diam(T) * log(deg(T)))" (proof of Theorem 13).  The simulation:
a node with ``k > 2`` children hangs them off a *balanced* binary combiner
of virtual nodes connected by zero-weight edges.  Virtual nodes carry no
requests and infinite storage cost, so they can never hold copies and
distances between real nodes are unchanged -- any placement on the binary
tree maps cost-preservingly back to the original tree and vice versa.

The resulting :class:`BinaryTreeInstance` is the direct input format of
:mod:`repro.core.tree_dp`; nodes have at most two children (exactly 0, 1
or 2), each annotated with ``cs``, ``fr``, ``fw`` and the parent edge
weight.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

__all__ = ["BinaryNode", "BinaryTreeInstance", "binarize_tree"]


@dataclass
class BinaryNode:
    """One node of the binarized rooted tree.

    ``original`` is the node id in the source tree, or ``None`` for a
    virtual combiner node.  ``children`` holds ``(child_index, edge_weight)``
    pairs, at most two.
    """

    original: int | None
    cs: float
    fr: float
    fw: float
    children: list[tuple[int, float]] = field(default_factory=list)


@dataclass
class BinaryTreeInstance:
    """A rooted binary tree with per-node data, ready for the DP.

    ``nodes[0]`` is the root.  ``postorder`` lists node indices children
    before parents (computed iteratively; no recursion-depth limits).
    """

    nodes: list[BinaryNode]
    root: int = 0

    def __post_init__(self) -> None:
        for node in self.nodes:
            if len(node.children) > 2:
                raise ValueError("binary tree nodes may have at most two children")

    @property
    def postorder(self) -> list[int]:
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(self.root, False)]
        while stack:
            v, expanded = stack.pop()
            if expanded:
                order.append(v)
            else:
                stack.append((v, True))
                for child, _ in self.nodes[v].children:
                    stack.append((child, False))
        return order

    def total_writes(self) -> float:
        return float(sum(node.fw for node in self.nodes))

    def total_reads(self) -> float:
        return float(sum(node.fr for node in self.nodes))

    def num_real_nodes(self) -> int:
        return sum(1 for node in self.nodes if node.original is not None)


def binarize_tree(
    tree: nx.Graph,
    storage_costs,
    read_freq,
    write_freq,
    *,
    root: int = 0,
    weight: str = "weight",
) -> BinaryTreeInstance:
    """Binarize a weighted tree with per-node data.

    Parameters
    ----------
    tree:
        A connected acyclic ``networkx`` graph with nodes ``0..n-1``.
    storage_costs, read_freq, write_freq:
        Arrays of shape ``(n,)`` (one object; the caller loops objects).
    root:
        Node to root the DP at (any choice yields the same optimum).
    """
    n = tree.number_of_nodes()
    if n == 0:
        raise ValueError("tree has no nodes")
    if tree.number_of_edges() != n - 1 or not nx.is_connected(tree):
        raise ValueError("input graph is not a tree")
    if set(tree.nodes()) != set(range(n)):
        raise ValueError("tree nodes must be 0..n-1")

    cs = np.asarray(storage_costs, dtype=float)
    fr = np.asarray(read_freq, dtype=float)
    fw = np.asarray(write_freq, dtype=float)
    for arr, name in ((cs, "storage_costs"), (fr, "read_freq"), (fw, "write_freq")):
        if arr.shape != (n,):
            raise ValueError(f"{name} must have shape ({n},)")

    nodes: list[BinaryNode] = []

    def new_real(v: int) -> int:
        nodes.append(BinaryNode(v, float(cs[v]), float(fr[v]), float(fw[v])))
        return len(nodes) - 1

    def new_virtual() -> int:
        nodes.append(BinaryNode(None, math.inf, 0.0, 0.0))
        return len(nodes) - 1

    root_idx = new_real(root)
    # (binary-tree node owning the combiner slot, original children, parent)
    stack: list[tuple[int, int, int | None]] = [(root_idx, root, None)]
    while stack:
        bt_idx, orig, parent = stack.pop()
        children = sorted(c for c in tree.neighbors(orig) if c != parent)

        def attach(slot: int, kids: list[int]) -> None:
            """Hang ``kids`` (original ids) below binary node ``slot``
            through a balanced combiner of zero-weight virtual nodes."""
            if not kids:
                return
            if len(kids) == 1:
                c = kids[0]
                ci = new_real(c)
                w = float(tree[orig][c].get(weight, 1.0))
                nodes[slot].children.append((ci, w))
                stack.append((ci, c, orig))
                return
            if len(nodes[slot].children) < 1 and len(kids) == 2:
                attach(slot, kids[:1])
                attach(slot, kids[1:])
                return
            # more children than direct slots: balanced virtual split
            mid = len(kids) // 2
            left = new_virtual()
            right = new_virtual()
            nodes[slot].children.append((left, 0.0))
            nodes[slot].children.append((right, 0.0))
            attach(left, kids[:mid])
            attach(right, kids[mid:])

        if len(children) <= 2:
            for c in children:
                attach(bt_idx, [c])
        else:
            attach(bt_idx, children)

    return BinaryTreeInstance(nodes, root_idx)
