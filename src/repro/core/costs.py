"""Cost accounting for the static data management problem.

The total cost of a placement (Section 1.1) is the sum of

* **storage cost** -- ``cs(v)`` for every node ``v`` holding a copy,
* **read cost** -- ``ct(h(r), s(r))`` for every read request ``r``, and
* **write cost** -- ``sum_{e in E_Ur} E_Ur(e) * ct(e)`` for every write,
  where the update multiset ``E_Ur`` must connect the writer with all
  copies.

The write cost depends on the *update policy*:

``"mst"`` (the Section 2 / restricted policy)
    A write at ``h`` first sends a message to the nearest copy ``s(r)``
    (cost ``d(h, S)``, booked as read cost per the paper's restricted-cost
    split), then updates all copies along a minimum spanning tree over the
    copy set in the metric closure (cost ``mst_cost(S)`` per write, booked
    as update cost).  Path edges may be double-counted -- the multiset
    semantics of ``E_Ur``.

``"steiner"`` (the exact policy of Section 3 and of the true optimum)
    A write at ``h`` pays exactly the minimum Steiner tree over
    ``{h} ∪ S``; Dreyfus--Wagner exact, so only usable when
    ``|S| + 1 <= MAX_EXACT_TERMINALS``.

``"steiner_mst"``
    Like ``"steiner"`` but with the factor-2 MST surrogate over
    ``{h} ∪ S`` -- polynomial for any size, an upper bound on the exact
    policy within factor 2 (Claim 2).

All kernels are numpy-vectorized over nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..graphs.metric import Metric
from ..graphs.mst import mst_cost, mst_cost_from_submatrix
from ..graphs.steiner import steiner_exact_cost, steiner_mst_cost
from .instance import DataManagementInstance
from .placement import Placement

__all__ = ["CostBreakdown", "object_cost", "placement_cost", "UPDATE_POLICIES"]

UPDATE_POLICIES = ("mst", "steiner", "steiner_mst")

#: ``placement_cost`` batches row fetches across objects only while the
#: union of copy nodes stays below this size; beyond it the per-object
#: path is no worse and avoids holding a large ``(k, n)`` row block.
_BATCH_UNION_LIMIT = 1024

#: Catalogs whose total copy-node union exceeds the row-block limit are
#: billed in object chunks of this size: each chunk's union is typically
#: far below the limit (tail objects share few nodes), so the batched
#: kernel still serves almost every object.
_BATCH_OBJECT_CHUNK = 1024


#: Relative slack for an explicitly supplied ``total`` against the
#: component sum: float accumulation noise is tolerated, a genuinely
#: inconsistent total is a hard error.
_TOTAL_TOLERANCE = 1e-9


@dataclass(frozen=True)
class CostBreakdown:
    """Storage / read / update decomposition of a placement's cost.

    Under the ``"mst"`` policy the fields follow the paper's restricted
    split (Section 2): ``read`` covers *all* requests' ``h(r) -> s(r)``
    distances (reads and the write attach messages) and ``update`` is
    ``W * mst_cost(S)``.  Under the Steiner policies ``read`` covers reads
    only and ``update`` is the summed per-write Steiner cost.

    ``total`` is normally derived (``storage + read + update``) and needs
    no argument; an explicitly supplied total must agree with the
    component sum.  Validation is strict: components must be finite and
    non-negative, and an inconsistent total is a :class:`ValueError` --
    a bill that silently disagrees with its own breakdown would poison
    every downstream comparison.

    ``detail`` carries cost-model-specific decomposition beyond the three
    shared components (per-timeslot splits, message counts, propagation
    charges -- see :mod:`repro.costmodel`).  Arithmetic (``+``,
    :meth:`scaled`) recomputes the total and drops the detail, which only
    describes the bill it was attached to.
    """

    storage: float
    read: float
    update: float
    total: float | None = None
    detail: dict | None = None

    def __post_init__(self) -> None:
        for name in ("storage", "read", "update"):
            value = float(getattr(self, name))
            if not (math.isfinite(value) and value >= 0.0):
                raise ValueError(
                    f"CostBreakdown.{name} must be finite and non-negative, "
                    f"got {getattr(self, name)!r}"
                )
            object.__setattr__(self, name, value)
        derived = self.storage + self.read + self.update
        if self.total is None:
            object.__setattr__(self, "total", derived)
            return
        total = float(self.total)
        if not math.isclose(
            total, derived, rel_tol=_TOTAL_TOLERANCE, abs_tol=_TOTAL_TOLERANCE
        ):
            raise ValueError(
                f"CostBreakdown total {total!r} is inconsistent with "
                f"storage + read + update = {derived!r}"
            )
        object.__setattr__(self, "total", total)

    def scaled(self, factor: float) -> "CostBreakdown":
        """Uniformly scaled breakdown (non-uniform object sizes)."""
        return CostBreakdown(
            self.storage * factor, self.read * factor, self.update * factor
        )

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            self.storage + other.storage,
            self.read + other.read,
            self.update + other.update,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostBreakdown(storage={self.storage:.4f}, read={self.read:.4f}, "
            f"update={self.update:.4f}, total={self.total:.4f})"
        )


ZERO_COST = CostBreakdown(0.0, 0.0, 0.0)


def object_cost(
    instance: DataManagementInstance,
    obj: int,
    copies,
    *,
    policy: str = "mst",
) -> CostBreakdown:
    """Cost of holding ``copies`` of object ``obj`` under a policy.

    The object's size multiplies the whole breakdown (fees are per byte;
    see :class:`~repro.core.instance.DataManagementInstance`).
    """
    nodes = instance.validate_copies(copies)
    metric = instance.metric
    fr = instance.read_freq[obj]
    fw = instance.write_freq[obj]
    size = instance.object_size(obj)
    storage = float(instance.storage_costs[np.asarray(nodes)].sum())
    d_to_set = metric.dist_to_set(nodes)

    if policy == "mst":
        # restricted split: all requests pay h -> s(r); updates pay the MST
        read = float((fr + fw) @ d_to_set)
        update = instance.total_writes(obj) * mst_cost(metric, nodes)
        return CostBreakdown(storage, read, update).scaled(size)

    if policy in ("steiner", "steiner_mst"):
        read = float(fr @ d_to_set)
        cost_fn = steiner_exact_cost if policy == "steiner" else steiner_mst_cost
        update = 0.0
        copy_set = set(nodes)
        for v in np.flatnonzero(fw > 0):
            v = int(v)
            terminals = nodes if v in copy_set else nodes + [v]
            update += float(fw[v]) * cost_fn(metric, terminals)
        return CostBreakdown(storage, read, update).scaled(size)

    raise ValueError(f"unknown update policy {policy!r}; use one of {UPDATE_POLICIES}")


def placement_cost(
    instance: DataManagementInstance,
    placement: Placement,
    *,
    policy: str = "mst",
) -> CostBreakdown:
    """Total cost of a placement across all objects (objects are
    independent in the model, so costs simply add).

    Under the ``"mst"`` policy the per-object loop is batched: one row
    fetch for the union of all copy nodes (a single multi-source block on
    a lazy backend), then each object's read/update kernels are numpy
    slices of that block.  Catalogs whose total union outgrows the row
    block are billed in object chunks, each with its own (small) union, so
    a 100k-object catalog still takes the batched path end to end.  The
    Steiner policies keep the per-object path (their update cost is
    per-writer anyway).
    """
    placement.validate(instance)
    if policy != "mst":
        total = ZERO_COST
        for obj in range(instance.num_objects):
            total = total + object_cost(
                instance, obj, placement.copies(obj), policy=policy
            )
        return total

    union = sorted({v for copies in placement for v in copies})
    if len(union) <= _BATCH_UNION_LIMIT:
        return _placement_cost_mst_batched(
            instance, placement, union, range(instance.num_objects)
        )
    total = ZERO_COST
    for start in range(0, instance.num_objects, _BATCH_OBJECT_CHUNK):
        objs = range(start, min(start + _BATCH_OBJECT_CHUNK, instance.num_objects))
        chunk_union = sorted({v for obj in objs for v in placement.copies(obj)})
        if len(chunk_union) <= _BATCH_UNION_LIMIT:
            total = total + _placement_cost_mst_batched(
                instance, placement, chunk_union, objs
            )
        else:  # pathological chunk (near-full replication): per-object path
            for obj in objs:
                total = total + object_cost(
                    instance, obj, placement.copies(obj), policy="mst"
                )
    return total


def _placement_cost_mst_batched(
    instance: DataManagementInstance,
    placement: Placement,
    union: list[int],
    objects,
) -> CostBreakdown:
    """MST-policy accounting for a set of objects from one shared row block."""
    metric = instance.metric
    rows = np.asarray(metric.rows(union))  # (k, n)
    pair = rows[:, union]  # (k, k) for the update MSTs
    pos = {v: i for i, v in enumerate(union)}

    total = ZERO_COST
    for obj in objects:
        nodes = placement.copies(obj)
        ids = np.asarray([pos[v] for v in nodes], dtype=int)
        d_to_set = rows[ids].min(axis=0)
        storage = float(instance.storage_costs[np.asarray(nodes)].sum())
        read = float((instance.read_freq[obj] + instance.write_freq[obj]) @ d_to_set)
        update = instance.total_writes(obj) * mst_cost_from_submatrix(
            pair[np.ix_(ids, ids)]
        )
        total = total + CostBreakdown(storage, read, update).scaled(
            instance.object_size(obj)
        )
    return total
