"""Memory capacity constraints: the related-work extension, executable.

The paper's model lets every node store arbitrarily many objects; its
related work (Baev--Rajaraman SODA'01; Meyer auf der Heide et al.
ESA'99/SODA'00, all cited in Section 1.2) studies the *capacitated*
variant where node ``v`` can hold at most ``cap(v)`` objects.  Capacities
couple the otherwise independent per-object placements, so this module
adds a deterministic cross-object repair pass on top of any uncapacitated
placement:

1. place each object ignoring capacities (any algorithm);
2. while some node overflows, evict one copy from an overflowing node --
   choosing, among all (object, overflowing node) pairs, the repair with
   the smallest total-cost increase between
   * **deleting** the copy (legal while the object keeps >= 1 copy), and
   * **relocating** it to the cheapest node with slack;
3. repeat until feasible.

This is a heuristic (the capacitated problem is NP-hard even for reads
only); Experiment E13 measures the price of tightening capacities.
Feasibility requires ``sum(cap) >= num_objects`` -- every object needs a
copy somewhere.

Scaling note: a naive implementation re-derives ``object_cost`` for every
(object, overflowing node, target) triple in every round --
``O(rounds * objects * n)`` full cost evaluations, which is what made
catalog-scale repair impossible.  :func:`enforce_capacities` instead
keeps, per object, the cached cost components that every candidate move
shares (the copy rows, the nearest-copy distance vector, the base bill)
and memoizes the per-(object, node) repair deltas across rounds; a round
invalidates only the one object it touched.  Candidate bills are
assembled from the cached pieces with the exact arithmetic of
:func:`~repro.core.costs.object_cost` (elementwise minima over the same
rows, the same dot products, the same MST kernel), so the greedy
trajectory -- and therefore the repaired placement -- is unchanged.
"""

from __future__ import annotations

import numpy as np

from ..graphs.mst import mst_cost
from .costs import CostBreakdown, object_cost
from .instance import DataManagementInstance
from .placement import Placement

__all__ = ["capacity_violations", "enforce_capacities"]


def capacity_violations(
    placement: Placement, capacities: np.ndarray
) -> dict[int, int]:
    """Nodes whose copy count exceeds capacity: ``{node: overflow}``."""
    caps = np.asarray(capacities)
    counts: dict[int, int] = {}
    for copies in placement:
        for v in copies:
            counts[v] = counts.get(v, 0) + 1
    return {
        v: count - int(caps[v])
        for v, count in sorted(counts.items())
        if count > caps[v]
    }


def _copy_distance_vectors(metric, idx: np.ndarray) -> np.ndarray:
    """Per-copy distance vectors, oriented like ``metric.dist_to_set``.

    A shortest-path closure is symmetric only to float precision, and the
    dense :class:`~repro.graphs.metric.Metric` answers set queries from
    matrix *columns* while row-oriented backends answer them from rows.
    Matching the orientation keeps every delta assembled here bit-equal to
    the ``object_cost`` the naive scan would have computed.
    """
    dist = getattr(metric, "dist", None)
    if dist is not None:
        return np.ascontiguousarray(dist[:, idx].T)
    return np.asarray(metric.rows(idx))


def _target_distance_vector(metric, u: int) -> np.ndarray:
    """``d(., u)`` with the same orientation as :func:`_copy_distance_vectors`."""
    dist = getattr(metric, "dist", None)
    if dist is not None:
        return dist[:, u]
    return np.asarray(metric.row(u))


class _ObjectRepairState:
    """Cached cost state of one object's current copy set.

    Everything a repair candidate needs is derived from the sorted copy
    list once per object *version* (the state is rebuilt from scratch when
    a move touches the object): the copy rows, the nearest-copy distance
    vector, the request-weight vector and the base bill.  Candidate deltas
    are then memoized per evicted node ``v`` (``delete``) and per
    ``(v, target u)`` (``relocate``) until the next invalidation.
    """

    __slots__ = (
        "nodes", "rows", "d1", "weights", "base", "size", "total_writes",
        "_alt", "_delete", "_reloc",
    )

    def __init__(self, instance: DataManagementInstance, obj: int, copies: set[int]):
        self.nodes = sorted(copies)
        metric = instance.metric
        idx = np.asarray(self.nodes, dtype=int)
        self.rows = _copy_distance_vectors(metric, idx)  # (k, n)
        self.d1 = self.rows.min(axis=0)
        self.weights = instance.read_freq[obj] + instance.write_freq[obj]
        self.size = instance.object_size(obj)
        self.total_writes = instance.total_writes(obj)
        self.base = self._bill(instance, self.nodes, self.d1)
        self._alt: dict[int, np.ndarray] = {}
        self._delete: dict[int, float] = {}
        self._reloc: dict[tuple[int, int], float] = {}

    def _bill(self, instance: DataManagementInstance, nodes, d_to_set) -> float:
        """``object_cost(...).total`` replayed from cached pieces: same
        storage sum, same read dot product, same MST kernel, same
        breakdown/scaling order -- bit-identical to the full recompute."""
        storage = float(instance.storage_costs[np.asarray(nodes)].sum())
        read = float(self.weights @ d_to_set)
        update = self.total_writes * mst_cost(instance.metric, nodes)
        return CostBreakdown(storage, read, update).scaled(self.size).total

    def _alt_without(self, v: int) -> np.ndarray:
        """Nearest-copy distances once ``v`` is gone (``inf`` if lone copy)."""
        alt = self._alt.get(v)
        if alt is None:
            mask = [i for i, u in enumerate(self.nodes) if u != v]
            if mask:
                alt = self.rows[mask].min(axis=0)
            else:
                alt = np.full(self.rows.shape[1], np.inf)
            self._alt[v] = alt
        return alt

    def delete_delta(self, instance: DataManagementInstance, v: int) -> float:
        delta = self._delete.get(v)
        if delta is None:
            nodes = [u for u in self.nodes if u != v]
            delta = self._bill(instance, nodes, self._alt_without(v)) - self.base
            self._delete[v] = delta
        return delta

    def relocate_delta(
        self, instance: DataManagementInstance, v: int, u: int
    ) -> float:
        delta = self._reloc.get((v, u))
        if delta is None:
            nodes = sorted([w for w in self.nodes if w != v] + [u])
            d_new = np.minimum(
                self._alt_without(v), _target_distance_vector(instance.metric, u)
            )
            delta = self._bill(instance, nodes, d_new) - self.base
            self._reloc[(v, u)] = delta
        return delta


class _GenericRepairState:
    """Memoized repair deltas under the non-``mst`` update policies.

    The Steiner policies price each write by its own tree, so there is no
    shared incremental structure to exploit; candidate bills fall back to
    :func:`~repro.core.costs.object_cost`, but stay memoized across rounds
    exactly like the fast path.
    """

    __slots__ = ("nodes", "base", "policy", "_delete", "_reloc")

    def __init__(self, instance: DataManagementInstance, obj: int, copies: set[int], policy: str):
        self.nodes = sorted(copies)
        self.policy = policy
        self.base = object_cost(instance, obj, self.nodes, policy=policy).total
        self._delete: dict[int, float] = {}
        self._reloc: dict[tuple[int, int], float] = {}

    def delta(self, instance: DataManagementInstance, obj: int, v: int, u: int | None) -> float:
        key_reloc = None if u is None else (v, u)
        if u is None:
            delta = self._delete.get(v)
        else:
            delta = self._reloc.get(key_reloc)
        if delta is None:
            nodes = set(self.nodes) - {v}
            if u is not None:
                nodes.add(u)
            delta = object_cost(instance, obj, nodes, policy=self.policy).total - self.base
            if u is None:
                self._delete[v] = delta
            else:
                self._reloc[key_reloc] = delta
        return delta


def enforce_capacities(
    instance: DataManagementInstance,
    placement: Placement,
    capacities,
    *,
    policy: str = "mst",
    max_steps: int | None = None,
) -> Placement:
    """Repair a placement until no node holds more than its capacity.

    Deterministic greedy (smallest cost increase first; ties by object,
    evicted node, then delete-before-relocate and ascending target).
    Raises when capacities are infeasible or when no repair move exists
    (every node full and nothing deletable).
    """
    caps = np.asarray(capacities, dtype=int)
    if caps.shape != (instance.num_nodes,):
        raise ValueError(f"capacities must have shape ({instance.num_nodes},)")
    if np.any(caps < 0):
        raise ValueError("capacities must be non-negative")
    if caps.sum() < instance.num_objects:
        raise ValueError(
            f"infeasible: total capacity {int(caps.sum())} cannot hold "
            f"{instance.num_objects} objects"
        )
    placement.validate(instance)

    sets = [set(copies) for copies in placement]
    counts = np.zeros(instance.num_nodes, dtype=int)
    holders: dict[int, set[int]] = {}
    for obj, copies in enumerate(sets):
        for v in copies:
            counts[v] += 1
            holders.setdefault(v, set()).add(obj)

    states: dict[int, _ObjectRepairState | _GenericRepairState] = {}

    def state_of(obj: int):
        st = states.get(obj)
        if st is None:
            if policy == "mst":
                st = _ObjectRepairState(instance, obj, sets[obj])
            else:
                st = _GenericRepairState(instance, obj, sets[obj], policy)
            states[obj] = st
        return st

    def candidate_delta(obj: int, v: int, u: int | None) -> float:
        st = state_of(obj)
        if isinstance(st, _ObjectRepairState):
            if u is None:
                return st.delete_delta(instance, v)
            return st.relocate_delta(instance, v, u)
        return st.delta(instance, obj, v, u)

    steps = 0
    limit = max_steps if max_steps is not None else 4 * sum(len(s) for s in sets) + 16
    while True:
        overflowing = np.flatnonzero(counts > caps)
        if overflowing.size == 0:
            break
        steps += 1
        if steps > limit:  # pragma: no cover - defensive
            raise RuntimeError("capacity repair did not converge")

        slack_nodes = np.flatnonzero(counts < caps)
        # (delta, obj, from, to); to = -1 encodes deletion, so exact ties
        # stay totally ordered (delete preferred over any relocation).
        best: tuple[float, int, int, int] | None = None
        for v in overflowing:
            v = int(v)
            for obj in sorted(holders.get(v, ())):
                # option 1: delete (object must keep a copy)
                if len(sets[obj]) >= 2:
                    cand = (candidate_delta(obj, v, None), obj, v, -1)
                    if best is None or cand < best:
                        best = cand
                # option 2: relocate to a node with slack
                for u in slack_nodes:
                    u = int(u)
                    if u in sets[obj]:
                        continue
                    cand = (candidate_delta(obj, v, u), obj, v, u)
                    if best is None or cand < best:
                        best = cand
        if best is None:
            raise RuntimeError(
                "no legal repair move: overflowing nodes hold only "
                "last copies and no node has slack"
            )
        _, obj, v_from, v_to = best
        sets[obj].discard(v_from)
        counts[v_from] -= 1
        holders[v_from].discard(obj)
        if v_to >= 0:
            sets[obj].add(v_to)
            counts[v_to] += 1
            holders.setdefault(v_to, set()).add(obj)
        states.pop(obj, None)  # only the touched object's deltas invalidate

    return Placement(tuple(tuple(sorted(s)) for s in sets))
