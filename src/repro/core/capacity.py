"""Memory capacity constraints: the related-work extension, executable.

The paper's model lets every node store arbitrarily many objects; its
related work (Baev--Rajaraman SODA'01; Meyer auf der Heide et al.
ESA'99/SODA'00, all cited in Section 1.2) studies the *capacitated*
variant where node ``v`` can hold at most ``cap(v)`` objects.  Capacities
couple the otherwise independent per-object placements, so this module
adds a deterministic cross-object repair pass on top of any uncapacitated
placement:

1. place each object ignoring capacities (any algorithm);
2. while some node overflows, evict one copy from an overflowing node --
   choosing, among all (object, overflowing node) pairs, the repair with
   the smallest total-cost increase between
   * **deleting** the copy (legal while the object keeps >= 1 copy), and
   * **relocating** it to the cheapest node with slack;
3. repeat until feasible.

This is a heuristic (the capacitated problem is NP-hard even for reads
only); Experiment E13 measures the price of tightening capacities.
Feasibility requires ``sum(cap) >= num_objects`` -- every object needs a
copy somewhere.
"""

from __future__ import annotations

import numpy as np

from .costs import object_cost
from .instance import DataManagementInstance
from .placement import Placement

__all__ = ["capacity_violations", "enforce_capacities"]


def capacity_violations(
    placement: Placement, capacities: np.ndarray
) -> dict[int, int]:
    """Nodes whose copy count exceeds capacity: ``{node: overflow}``."""
    caps = np.asarray(capacities)
    counts: dict[int, int] = {}
    for copies in placement:
        for v in copies:
            counts[v] = counts.get(v, 0) + 1
    return {
        v: count - int(caps[v])
        for v, count in sorted(counts.items())
        if count > caps[v]
    }


def enforce_capacities(
    instance: DataManagementInstance,
    placement: Placement,
    capacities,
    *,
    policy: str = "mst",
    max_steps: int | None = None,
) -> Placement:
    """Repair a placement until no node holds more than its capacity.

    Deterministic greedy (smallest cost increase first; ties by object
    then node index).  Raises when capacities are infeasible or when no
    repair move exists (every node full and nothing deletable).
    """
    caps = np.asarray(capacities, dtype=int)
    if caps.shape != (instance.num_nodes,):
        raise ValueError(f"capacities must have shape ({instance.num_nodes},)")
    if np.any(caps < 0):
        raise ValueError("capacities must be non-negative")
    if caps.sum() < instance.num_objects:
        raise ValueError(
            f"infeasible: total capacity {int(caps.sum())} cannot hold "
            f"{instance.num_objects} objects"
        )
    placement.validate(instance)

    sets = [set(copies) for copies in placement]
    counts = np.zeros(instance.num_nodes, dtype=int)
    for copies in sets:
        for v in copies:
            counts[v] += 1

    def cost_of(obj: int, copies: set[int]) -> float:
        return object_cost(instance, obj, copies, policy=policy).total

    steps = 0
    limit = max_steps if max_steps is not None else 4 * sum(len(s) for s in sets) + 16
    while True:
        overflowing = np.flatnonzero(counts > caps)
        if overflowing.size == 0:
            break
        steps += 1
        if steps > limit:  # pragma: no cover - defensive
            raise RuntimeError("capacity repair did not converge")

        slack_nodes = np.flatnonzero(counts < caps)
        best: tuple[float, int, int, int | None] | None = None  # (delta, obj, from, to)
        for v in overflowing:
            v = int(v)
            for obj in range(instance.num_objects):
                if v not in sets[obj]:
                    continue
                base = cost_of(obj, sets[obj])
                # option 1: delete (object must keep a copy)
                if len(sets[obj]) >= 2:
                    delta = cost_of(obj, sets[obj] - {v}) - base
                    cand = (delta, obj, v, None)
                    if best is None or cand < best:
                        best = cand
                # option 2: relocate to a node with slack
                for u in slack_nodes:
                    u = int(u)
                    if u in sets[obj]:
                        continue
                    delta = cost_of(obj, (sets[obj] - {v}) | {u}) - base
                    cand = (delta, obj, v, u)
                    if best is None or cand < best:
                        best = cand
        if best is None:
            raise RuntimeError(
                "no legal repair move: overflowing nodes hold only "
                "last copies and no node has slack"
            )
        _, obj, v_from, v_to = best
        sets[obj].discard(v_from)
        counts[v_from] -= 1
        if v_to is not None:
            sets[obj].add(v_to)
            counts[v_to] += 1

    return Placement(tuple(tuple(sorted(s)) for s in sets))
