"""Exhaustive optimal placements for small instances.

The static data management problem is NP-hard on arbitrary networks (Milo
and Wolfson, cited in Section 1.2), so ground truth for the approximation
experiments comes from explicit subset enumeration:

* given the copy set ``S``, reads are optimally served by the nearest copy
  and writes by a minimum Steiner tree over ``{h} ∪ S`` -- so the global
  optimum is ``min`` over the ``2^n - 1`` non-empty subsets of an exactly
  evaluable expression;
* the restricted optimum of Section 2 replaces the per-write Steiner tree
  with (path to nearest copy) + (copy MST).

For the true (Steiner-policy) optimum, evaluating Dreyfus--Wagner per
(subset, writer) pair would be astronomically slow; instead
:class:`SteinerOracle` runs *one* Dreyfus--Wagner pass whose DP table
covers **all** terminal subsets simultaneously (``O(3^n n + 2^n n^2)``),
after which any ``steiner({h} ∪ S)`` is a table lookup.
"""

from __future__ import annotations

import numpy as np

from ..core.costs import CostBreakdown
from ..core.instance import DataManagementInstance
from ..core.placement import Placement
from ..core.restricted import is_restricted
from ..graphs.backend import dense_distance_matrix
from ..graphs.metric import Metric
from ..graphs.mst import mst_cost

__all__ = [
    "SteinerOracle",
    "brute_force_object",
    "brute_force_placement",
    "MAX_BRUTE_FORCE_NODES",
    "MAX_STEINER_ORACLE_NODES",
]

MAX_BRUTE_FORCE_NODES = 18
MAX_STEINER_ORACLE_NODES = 14


class SteinerOracle:
    """Exact Steiner-tree costs for *every* node subset of a small metric.

    One Dreyfus--Wagner sweep fills ``dp[mask][v]`` = cost of a minimum
    tree spanning ``set(mask) ∪ {v}``; then
    ``steiner(S) = dp[mask(S \\ {t})][t]`` for any ``t in S``.
    """

    def __init__(self, metric: Metric) -> None:
        n = metric.n
        if n > MAX_STEINER_ORACLE_NODES:
            raise ValueError(
                f"SteinerOracle is exponential; n={n} exceeds "
                f"{MAX_STEINER_ORACLE_NODES}"
            )
        self.metric = metric
        d = dense_distance_matrix(metric, context="SteinerOracle")
        full = 1 << n
        dp = np.full((full, n), np.inf)
        dp[0] = 0.0  # spanning {} ∪ {v} is the single node v
        for i in range(n):
            dp[1 << i] = d[i]
        for mask in range(1, full):
            if mask & (mask - 1) == 0:
                continue
            row = dp[mask]
            sub = (mask - 1) & mask
            while sub:
                comp = mask ^ sub
                if sub <= comp:
                    np.minimum(row, dp[sub] + dp[comp], out=row)
                sub = (sub - 1) & mask
            np.minimum(row, (row[:, None] + d).min(axis=0), out=row)
        self._dp = dp

    def steiner_cost(self, nodes) -> float:
        """Minimum Steiner tree cost spanning ``nodes`` (>= 1 node)."""
        idx = sorted(set(int(v) for v in nodes))
        if not idx:
            raise ValueError("need at least one terminal")
        t = idx[-1]
        mask = 0
        for v in idx[:-1]:
            mask |= 1 << v
        return float(self._dp[mask][t])


def object_cost_steiner_oracle(
    instance: DataManagementInstance,
    obj: int,
    copies,
    oracle: SteinerOracle,
) -> CostBreakdown:
    """Exact Steiner-policy cost of one copy set via the subset oracle.

    Equivalent to ``object_cost(..., policy="steiner")`` but amortizes the
    Dreyfus--Wagner work across many evaluations on the same metric.
    """
    nodes = instance.validate_copies(copies)
    metric = instance.metric
    fr = instance.read_freq[obj]
    fw = instance.write_freq[obj]
    storage = float(instance.storage_costs[np.asarray(nodes)].sum())
    read = float(fr @ metric.dist_to_set(nodes))
    update = 0.0
    base_mask = 0
    for v in nodes:
        base_mask |= 1 << v
    t = nodes[-1]
    for h in np.flatnonzero(fw > 0):
        h = int(h)
        qmask = (base_mask | (1 << h)) & ~(1 << t)
        update += float(fw[h]) * float(oracle._dp[qmask][t])
    return CostBreakdown(storage, read, update)


def brute_force_object(
    instance: DataManagementInstance,
    obj: int,
    *,
    policy: str = "mst",
    require_restricted: bool = False,
    oracle: SteinerOracle | None = None,
) -> tuple[tuple[int, ...], float]:
    """Optimal copy set for one object by subset enumeration.

    Parameters
    ----------
    policy:
        ``"mst"`` -- the Section 2 restricted update policy (per write:
        distance to nearest copy + copy-MST cost); optimum over subsets of
        this objective is the *restricted optimum* when combined with
        ``require_restricted=True``.
        ``"steiner"`` -- the true model optimum (per write: exact minimum
        Steiner tree over writer + copies).
    require_restricted:
        Additionally require every copy to serve at least ``W`` requests
        (constraint 2 of a restricted placement).
    oracle:
        Reuse a prebuilt :class:`SteinerOracle` across calls.

    Returns ``(copies, cost)``.
    """
    n = instance.num_nodes
    if n > MAX_BRUTE_FORCE_NODES:
        raise ValueError(f"brute force over 2^{n} subsets refused (n > {MAX_BRUTE_FORCE_NODES})")
    metric = instance.metric
    fr = instance.read_freq[obj]
    fw = instance.write_freq[obj]
    demand = fr + fw
    w_total = instance.total_writes(obj)
    cs = instance.storage_costs
    dist = dense_distance_matrix(metric, context="brute_force_object")

    if policy == "steiner":
        if oracle is None:
            oracle = SteinerOracle(metric)
    elif policy != "mst":
        raise ValueError(f"unsupported brute-force policy {policy!r}")

    writers = np.flatnonzero(fw > 0)
    best_cost = np.inf
    best: tuple[int, ...] | None = None
    for mask in range(1, 1 << n):
        nodes = [v for v in range(n) if mask >> v & 1]
        idx = np.asarray(nodes)
        dts = dist[:, idx].min(axis=1)
        storage = float(cs[idx].sum())
        if policy == "mst":
            cost = storage + float(demand @ dts) + w_total * mst_cost(metric, nodes)
        else:
            cost = storage + float(fr @ dts)
            base_mask = mask
            t = nodes[-1]
            for h in writers:
                h = int(h)
                qmask = (base_mask | (1 << h)) & ~(1 << t)
                cost += float(fw[h]) * float(oracle._dp[qmask][t])
        if cost < best_cost - 1e-12:
            if require_restricted and not is_restricted(instance, obj, nodes):
                continue
            best_cost = cost
            best = tuple(nodes)
    if best is None:
        raise RuntimeError("no feasible placement found (restricted filter too strict?)")
    return best, float(best_cost)


def brute_force_placement(
    instance: DataManagementInstance,
    *,
    policy: str = "mst",
    require_restricted: bool = False,
) -> tuple[Placement, float]:
    """Optimal placement across all objects (objects are independent)."""
    oracle = SteinerOracle(instance.metric) if policy == "steiner" else None
    sets = []
    total = 0.0
    for obj in range(instance.num_objects):
        copies, cost = brute_force_object(
            instance,
            obj,
            policy=policy,
            require_restricted=require_restricted,
            oracle=oracle,
        )
        sets.append(copies)
        total += cost
    return Placement(tuple(sets)), total
