"""Baseline placement strategies for the comparison experiments.

The paper motivates its algorithm against simpler policies a content
provider might reach for first; Experiment E6 sweeps the read/write mix to
show where each baseline breaks down:

* :func:`best_single_node` -- one copy at the 1-median (no update traffic,
  maximal read traffic): the optimal *no-replication* strategy.
* :func:`full_replication` -- a copy everywhere (zero read traffic,
  maximal update and storage cost).
* :func:`write_blind_placement` -- the phase-1 facility-location solution
  used as-is (what a read-only model such as Baev--Rajaraman's would
  output when writes exist): the ablation that motivates phases 2-3.
* :func:`greedy_add_placement` -- start from the 1-median and greedily add
  the copy with the best *true-objective* improvement.
* :func:`local_search_placement` -- add/drop/swap local search on the true
  objective (a strong but guarantee-free heuristic).
* :func:`random_placement` -- seeded random copy sets (sanity floor).
"""

from __future__ import annotations

import numpy as np

from ..core.costs import object_cost
from ..core.instance import DataManagementInstance
from ..facility import FL_SOLVERS, related_facility_problem

__all__ = [
    "best_single_node",
    "full_replication",
    "write_blind_placement",
    "greedy_add_placement",
    "local_search_placement",
    "random_placement",
]


def best_single_node(instance: DataManagementInstance, obj: int) -> tuple[int, ...]:
    """The cost-weighted 1-median: optimal single-copy placement.

    With a single copy the update multicast tree is empty, so the cost is
    ``cs(v) + sum_u (fr+fw)(u) * d(u, v)`` under every policy.
    """
    demand = instance.demand(obj)
    score = instance.storage_costs + instance.metric.matvec(demand)
    return (int(np.argmin(score)),)


def full_replication(instance: DataManagementInstance, obj: int) -> tuple[int, ...]:
    """A copy on every node."""
    del obj
    return tuple(range(instance.num_nodes))


def write_blind_placement(
    instance: DataManagementInstance, obj: int, *, fl_solver: str = "local_search"
) -> tuple[int, ...]:
    """Phase 1 only: solve the related FL problem and stop.

    This is the placement a read-only cost model would produce; it ignores
    that every copy multiplies update traffic.
    """
    if instance.total_requests(obj) == 0:
        return (int(np.argmin(instance.storage_costs)),)
    fl = related_facility_problem(instance, obj)
    return tuple(fl.to_nodes(FL_SOLVERS[fl_solver](fl)))


def greedy_add_placement(
    instance: DataManagementInstance, obj: int, *, policy: str = "mst"
) -> tuple[int, ...]:
    """Greedy copy addition on the true objective (update cost included)."""
    current = set(best_single_node(instance, obj))
    cost = object_cost(instance, obj, current, policy=policy).total
    improved = True
    while improved:
        improved = False
        best_gain, best_v = 1e-12, None
        for v in range(instance.num_nodes):
            if v in current:
                continue
            cand = object_cost(instance, obj, current | {v}, policy=policy).total
            if cost - cand > best_gain:
                best_gain, best_v = cost - cand, v
        if best_v is not None:
            current.add(best_v)
            cost -= best_gain
            improved = True
    return tuple(sorted(current))


def local_search_placement(
    instance: DataManagementInstance,
    obj: int,
    *,
    policy: str = "mst",
    max_rounds: int = 10_000,
) -> tuple[int, ...]:
    """Add/drop/swap local search directly on the data-management objective.

    Unlike :func:`repro.facility.local_search_ufl`, every candidate move is
    scored with the full cost including update traffic, so this baseline
    has no proven factor -- Experiment E6 measures how it fares in practice.
    """
    n = instance.num_nodes
    current = set(best_single_node(instance, obj))
    cost = object_cost(instance, obj, current, policy=policy).total

    def try_cost(nodes: set[int]) -> float:
        if not nodes:
            return np.inf
        return object_cost(instance, obj, nodes, policy=policy).total

    for _ in range(max_rounds):
        best_gain, best_set = 1e-12, None
        for v in range(n):
            if v not in current:
                cand = current | {v}
                gain = cost - try_cost(cand)
                if gain > best_gain:
                    best_gain, best_set = gain, cand
        if len(current) >= 2:
            for v in list(current):
                cand = current - {v}
                gain = cost - try_cost(cand)
                if gain > best_gain:
                    best_gain, best_set = gain, cand
        for out in list(current):
            base = current - {out}
            for inn in range(n):
                if inn in current:
                    continue
                cand = base | {inn}
                gain = cost - try_cost(cand)
                if gain > best_gain:
                    best_gain, best_set = gain, cand
        if best_set is None:
            break
        current = best_set
        cost = try_cost(current)
    return tuple(sorted(current))


def random_placement(
    instance: DataManagementInstance, obj: int, *, seed: int, k: int | None = None
) -> tuple[int, ...]:
    """Uniformly random copy set of size ``k`` (default: random size)."""
    del obj
    rng = np.random.default_rng(seed)
    n = instance.num_nodes
    if k is None:
        k = int(rng.integers(1, n + 1))
    if not 1 <= k <= n:
        raise ValueError("k must be in [1, n]")
    return tuple(sorted(int(v) for v in rng.choice(n, size=k, replace=False)))
