"""Exact read-only data placement (the Baev--Rajaraman setting).

Section 1.2 discusses Baev and Rajaraman (SODA'01), who treat the same
cost-based placement problem restricted to *read requests only*.  Without
writes the update cost vanishes and the data management problem for one
object is exactly uncapacitated facility location: facilities = nodes with
opening cost ``cs``, clients weighted by ``fr``, connections priced by the
metric.  This module wraps the MILP solver from :mod:`repro.facility.mip`
as a polynomial-free exact baseline for the read-only experiments (and as
the certified optimum that Experiment E9's load-model checks build on).
"""

from __future__ import annotations

import numpy as np

from ..core.instance import DataManagementInstance
from ..core.placement import Placement
from ..facility.mip import exact_ufl
from ..facility.problem import FacilityLocationProblem
from ..graphs.backend import dense_distance_matrix

__all__ = ["exact_read_only_object", "exact_read_only_placement"]


def _read_only_problem(
    instance: DataManagementInstance, obj: int
) -> FacilityLocationProblem:
    return FacilityLocationProblem(
        open_costs=instance.storage_costs,
        demands=instance.read_freq[obj],
        dist=dense_distance_matrix(instance.metric, context="exact_read_only"),
    )


def exact_read_only_object(
    instance: DataManagementInstance, obj: int
) -> tuple[int, ...]:
    """Optimal copy set for one object, *ignoring its writes entirely*.

    Raises if the object actually has writes -- use the exhaustive or
    approximation solvers for the general problem; silently dropping write
    cost would be a trap.
    """
    if not instance.is_read_only(obj):
        raise ValueError(
            f"object {obj} has writes; the read-only ILP would understate cost"
        )
    return tuple(exact_ufl(_read_only_problem(instance, obj)))


def exact_read_only_placement(instance: DataManagementInstance) -> Placement:
    """Optimal placement for a fully read-only instance."""
    if not instance.is_read_only():
        raise ValueError("instance has writes; read-only ILP is inapplicable")
    return Placement(
        tuple(exact_read_only_object(instance, obj) for obj in range(instance.num_objects))
    )
