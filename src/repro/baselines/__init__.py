"""Baselines: exhaustive optima, heuristic strategies, read-only ILP."""

from .exhaustive import (
    MAX_BRUTE_FORCE_NODES,
    MAX_STEINER_ORACLE_NODES,
    SteinerOracle,
    brute_force_object,
    brute_force_placement,
    object_cost_steiner_oracle,
)
from .heuristics import (
    best_single_node,
    full_replication,
    greedy_add_placement,
    local_search_placement,
    random_placement,
    write_blind_placement,
)
from .ilp import exact_read_only_object, exact_read_only_placement

__all__ = [
    "SteinerOracle",
    "brute_force_object",
    "brute_force_placement",
    "object_cost_steiner_oracle",
    "MAX_BRUTE_FORCE_NODES",
    "MAX_STEINER_ORACLE_NODES",
    "best_single_node",
    "full_replication",
    "greedy_add_placement",
    "local_search_placement",
    "random_placement",
    "write_blind_placement",
    "exact_read_only_object",
    "exact_read_only_placement",
]
