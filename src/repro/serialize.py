"""Persist problem instances and placements to JSON / NPZ.

The API layer's artifacts must survive a process boundary: a catalog
placed today is billed, audited or replayed tomorrow.  This module is
the single implementation of that persistence, shared by
:class:`~repro.api.PlanReport` and the ``plan --save/--load`` CLI:

* :func:`save_instance` / :func:`load_instance` round-trip a
  :class:`~repro.core.instance.DataManagementInstance` *including its
  distance backend* -- the dense :class:`~repro.graphs.metric.Metric`
  stores its closure matrix, the :class:`~repro.graphs.backend.LazyMetric`
  stores only its CSR adjacency -- so a reloaded instance answers every
  distance query bit-identically and re-placing it reproduces the exact
  copy sets (property-tested in ``tests/test_serialize.py``).
* :func:`placement_to_arrays` / :func:`placement_from_arrays` flatten the
  ragged copy sets into two integer arrays (concatenated nodes +
  offsets), the NPZ-friendly columnar form.

Formats are chosen by suffix: ``*.npz`` (compact, binary-exact) or
``*.json`` (diff-able; floats round-trip exactly through ``repr``).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
from scipy.sparse import csr_matrix

from .core.instance import DataManagementInstance
from .core.placement import Placement
from .graphs.backend import LazyMetric
from .graphs.metric import Metric
from .graphs.partition import Partition

__all__ = [
    "save_instance",
    "load_instance",
    "instance_to_dict",
    "instance_from_dict",
    "partition_to_dict",
    "partition_from_dict",
    "save_partition",
    "load_partition",
    "placement_to_arrays",
    "placement_from_arrays",
    "ragged_to_arrays",
    "ragged_from_arrays",
    "save_array_archive",
    "load_array_archive",
    "canonical_payload",
    "canonical_json_dumps",
]

_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# canonical JSON: the byte-deterministic artifact form
# ----------------------------------------------------------------------
def canonical_payload(data):
    """Recursively normalize ``data`` into plain JSON types.

    The canonical form is what :func:`canonical_json_dumps` serializes
    and what :func:`repro.bench.trials.config_hash` digests, so every
    ambiguity a Python value could smuggle into the bytes is resolved
    here: numpy scalars become Python scalars, tuples become lists
    (JSON has no tuple, so a round-trip would otherwise change the
    value), mapping keys are coerced to ``str`` and negative zero
    collapses onto ``0.0``.  Anything without a JSON form (objects,
    sets, byte strings) is a hard ``TypeError`` -- a trial config that
    cannot round-trip must not silently hash by ``repr``.
    """
    if isinstance(data, dict):
        out = {}
        for key, value in data.items():
            skey = key if isinstance(key, str) else str(key)
            if skey in out:
                raise ValueError(f"duplicate canonical key {skey!r}")
            out[skey] = canonical_payload(value)
        return out
    if isinstance(data, (list, tuple)):
        return [canonical_payload(v) for v in data]
    if isinstance(data, np.ndarray):
        return [canonical_payload(v) for v in data.tolist()]
    if isinstance(data, (bool, np.bool_)):
        return bool(data)
    if isinstance(data, (int, np.integer)):
        return int(data)
    if isinstance(data, (float, np.floating)):
        value = float(data)
        return 0.0 if value == 0.0 else value  # -0.0 -> 0.0
    if data is None or isinstance(data, str):
        return data
    raise TypeError(
        f"{type(data).__name__} value {data!r} has no canonical JSON form"
    )


def canonical_json_dumps(data, *, indent: int | None = 2) -> str:
    """Serialize ``data`` as byte-deterministic JSON.

    Keys are sorted, floats use Python's shortest round-trip ``repr``
    (identical on every IEEE-754 platform since 3.1), and the payload is
    normalized through :func:`canonical_payload` first -- so two equal
    values always produce identical bytes, regardless of dict insertion
    order, tuple-vs-list spelling or numpy scalar types.  This is the
    writer behind ``BENCH_*.json`` artifacts and the trial cache, whose
    regression gates diff bytes.
    """
    return json.dumps(canonical_payload(data), indent=indent, sort_keys=True)


def artifact_suffix(path: Path) -> str:
    """The normalized persistence format of ``path`` -- ``".json"`` or
    ``".npz"``.  Anything else is a hard error: ``np.savez`` would
    silently append ``.npz`` on save and the matching load would then
    miss the file, breaking the round-trip contract."""
    suffix = path.suffix.lower()
    if suffix not in (".json", ".npz"):
        raise ValueError(
            f"unsupported artifact suffix {path.suffix!r} on {path}; "
            "use .json or .npz"
        )
    return suffix


# ----------------------------------------------------------------------
# placements <-> columnar arrays
# ----------------------------------------------------------------------
def placement_to_arrays(placement: Placement) -> tuple[np.ndarray, np.ndarray]:
    """Flatten ragged copy sets: ``(concatenated nodes, offsets)``.

    ``offsets`` has length ``m + 1``; object ``i``'s copies are
    ``nodes[offsets[i]:offsets[i + 1]]``.
    """
    sizes = [len(s) for s in placement.copy_sets]
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    nodes = np.fromiter(
        (v for s in placement.copy_sets for v in s), dtype=np.int64,
        count=int(offsets[-1]),
    )
    return nodes, offsets


def placement_from_arrays(nodes: np.ndarray, offsets: np.ndarray) -> Placement:
    nodes = np.asarray(nodes, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    return Placement(
        tuple(
            tuple(int(v) for v in nodes[offsets[i]:offsets[i + 1]])
            for i in range(offsets.size - 1)
        )
    )


# ----------------------------------------------------------------------
# metric payloads
# ----------------------------------------------------------------------
def _metric_payload(metric) -> dict:
    if isinstance(metric, Metric):
        return {"metric_kind": "dense", "dist": metric.dist}
    if isinstance(metric, LazyMetric):
        adj = metric.adjacency
        return {
            "metric_kind": "lazy",
            "adj_data": adj.data,
            "adj_indices": adj.indices,
            "adj_indptr": adj.indptr,
            "adj_n": np.int64(metric.n),
        }
    raise TypeError(
        f"cannot serialize metric of type {type(metric).__name__}; "
        "supported backends: Metric (dense), LazyMetric"
    )


def _metric_from_payload(kind: str, payload: dict):
    if kind == "dense":
        return Metric(np.asarray(payload["dist"], dtype=float), validate=False)
    if kind == "lazy":
        n = int(payload["adj_n"])
        adj = csr_matrix(
            (
                np.asarray(payload["adj_data"], dtype=float),
                np.asarray(payload["adj_indices"], dtype=np.int32),
                np.asarray(payload["adj_indptr"], dtype=np.int32),
            ),
            shape=(n, n),
        )
        return LazyMetric(adj, validate=False)
    raise ValueError(f"unknown metric_kind {kind!r}")


# ----------------------------------------------------------------------
# instances
# ----------------------------------------------------------------------
def instance_to_dict(instance: DataManagementInstance) -> dict:
    """JSON-ready dict form (nested lists; exact float round-trip)."""
    payload = _metric_payload(instance.metric)
    metric = {
        k: (v.tolist() if isinstance(v, np.ndarray) else int(v))
        for k, v in payload.items()
        if k != "metric_kind"
    }
    return {
        "format": "repro-instance",
        "version": _FORMAT_VERSION,
        "metric_kind": payload["metric_kind"],
        "metric": metric,
        "storage_costs": instance.storage_costs.tolist(),
        "read_freq": instance.read_freq.tolist(),
        "write_freq": instance.write_freq.tolist(),
        "object_names": list(instance.object_names),
        "object_sizes": instance.object_sizes.tolist(),
    }


def instance_from_dict(data: dict) -> DataManagementInstance:
    if data.get("format") != "repro-instance":
        raise ValueError("not a serialized DataManagementInstance")
    metric = _metric_from_payload(data["metric_kind"], data["metric"])
    return DataManagementInstance(
        metric,
        np.asarray(data["storage_costs"], dtype=float),
        np.asarray(data["read_freq"], dtype=float),
        np.asarray(data["write_freq"], dtype=float),
        object_names=tuple(data["object_names"]),
        object_sizes=np.asarray(data["object_sizes"], dtype=float),
    )


def partition_to_dict(partition: Partition) -> dict:
    """JSON-ready dict form of a :class:`~repro.graphs.partition.Partition`."""
    return {
        "format": "repro-partition",
        "version": _FORMAT_VERSION,
        "shards": [list(s) for s in partition.shards],
        "portals": [list(p) for p in partition.portals],
        "quotient": partition.quotient.tolist(),
    }


def partition_from_dict(data: dict) -> Partition:
    if data.get("format") != "repro-partition":
        raise ValueError("not a serialized Partition")
    return Partition(
        shards=tuple(tuple(int(v) for v in s) for s in data["shards"]),
        portals=tuple(tuple(int(v) for v in p) for p in data["portals"]),
        quotient=np.asarray(data["quotient"], dtype=float),
    )


def ragged_to_arrays(groups) -> tuple[np.ndarray, np.ndarray]:
    """Flatten any ragged int-group sequence: ``(concatenated, offsets)``.

    The shared encoding behind :func:`placement_to_arrays`, partition
    archives and the serving daemon's warm-state checkpoints; group
    ``i`` is ``nodes[offsets[i]:offsets[i + 1]]``.
    """
    sizes = [len(g) for g in groups]
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    nodes = np.fromiter(
        (v for g in groups for v in g), dtype=np.int64, count=int(offsets[-1])
    )
    return nodes, offsets


def ragged_from_arrays(nodes, offsets) -> tuple[tuple[int, ...], ...]:
    """Inverse of :func:`ragged_to_arrays` (tuples of plain ints)."""
    nodes = np.asarray(nodes, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    return tuple(
        tuple(int(v) for v in nodes[offsets[i]:offsets[i + 1]])
        for i in range(offsets.size - 1)
    )


def save_array_archive(path, *, fmt: str, meta: dict, arrays: dict) -> None:
    """Write ``*.npz`` with a canonical-JSON ``meta`` record (the shared
    archive idiom of partitions, instances, plan reports and the serving
    daemon's warm-state checkpoints).

    ``fmt`` tags the archive so :func:`load_array_archive` can reject a
    file of the wrong kind with a named error instead of a KeyError;
    ``meta`` must be canonical-JSON-able (:func:`canonical_payload`
    semantics, so a non-JSON value is a hard ``TypeError`` at save time,
    not a corrupt archive at load time).
    """
    path = Path(path)
    if artifact_suffix(path) != ".npz":
        raise ValueError(f"array archives are .npz files, got {path.name}")
    if "meta" in arrays:
        raise ValueError("'meta' is reserved for the archive header")
    header = {"format": str(fmt), "version": _FORMAT_VERSION}
    header.update(canonical_payload(meta))
    np.savez_compressed(
        path, meta=np.str_(canonical_json_dumps(header, indent=None)), **arrays
    )


def load_array_archive(path, *, fmt: str) -> tuple[dict, dict]:
    """Read an archive written by :func:`save_array_archive`; returns
    ``(meta, arrays)`` with the format/version header checked."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"]))
        if meta.get("format") != fmt:
            raise ValueError(
                f"{path} holds a {meta.get('format')!r} archive, "
                f"expected {fmt!r}"
            )
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"{path} has format version {meta.get('version')!r}, "
                f"this build reads version {_FORMAT_VERSION}"
            )
        arrays = {k: np.asarray(archive[k]) for k in archive.files if k != "meta"}
    return meta, arrays


def save_partition(partition: Partition, path) -> None:
    """Write a partition to ``*.npz`` or ``*.json`` (by suffix) -- so an
    expensive decomposition of a big network is computed once and reused
    across planning runs."""
    path = Path(path)
    if artifact_suffix(path) == ".json":
        path.write_text(json.dumps(partition_to_dict(partition)) + "\n")
        return
    shard_nodes, shard_offsets = ragged_to_arrays(partition.shards)
    portal_nodes, portal_offsets = ragged_to_arrays(partition.portals)
    meta = {"format": "repro-partition", "version": _FORMAT_VERSION}
    np.savez_compressed(
        path,
        meta=np.str_(json.dumps(meta)),
        shard_nodes=shard_nodes,
        shard_offsets=shard_offsets,
        portal_nodes=portal_nodes,
        portal_offsets=portal_offsets,
        quotient=partition.quotient,
    )


def load_partition(path) -> Partition:
    """Read a partition written by :func:`save_partition`."""
    path = Path(path)
    if artifact_suffix(path) == ".json":
        return partition_from_dict(json.loads(path.read_text()))
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"]))
        if meta.get("format") != "repro-partition":
            raise ValueError(f"{path} is not a serialized partition")
        return Partition(
            shards=ragged_from_arrays(
                archive["shard_nodes"], archive["shard_offsets"]
            ),
            portals=ragged_from_arrays(
                archive["portal_nodes"], archive["portal_offsets"]
            ),
            quotient=np.asarray(archive["quotient"], dtype=float),
        )


def save_instance(instance: DataManagementInstance, path) -> None:
    """Write an instance to ``*.npz`` or ``*.json`` (by suffix)."""
    path = Path(path)
    if artifact_suffix(path) == ".json":
        path.write_text(json.dumps(instance_to_dict(instance)) + "\n")
        return
    payload = _metric_payload(instance.metric)
    meta = {
        "format": "repro-instance",
        "version": _FORMAT_VERSION,
        "metric_kind": payload.pop("metric_kind"),
        "object_names": list(instance.object_names),
    }
    np.savez_compressed(
        path,
        meta=np.str_(json.dumps(meta)),
        storage_costs=instance.storage_costs,
        read_freq=instance.read_freq,
        write_freq=instance.write_freq,
        object_sizes=instance.object_sizes,
        **payload,
    )


def load_instance(path) -> DataManagementInstance:
    """Read an instance written by :func:`save_instance`."""
    path = Path(path)
    if artifact_suffix(path) == ".json":
        return instance_from_dict(json.loads(path.read_text()))
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"]))
        if meta.get("format") != "repro-instance":
            raise ValueError(f"{path} is not a serialized instance")
        metric = _metric_from_payload(meta["metric_kind"], archive)
        return DataManagementInstance(
            metric,
            archive["storage_costs"],
            archive["read_freq"],
            archive["write_freq"],
            object_names=tuple(meta["object_names"]),
            object_sizes=archive["object_sizes"],
        )
