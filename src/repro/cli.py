"""Command-line interface: run experiments and scenarios from the shell.

Usage::

    python -m repro experiment E1 [E3 ...]   # regenerate experiment tables
    python -m repro experiment all
    python -m repro scenario www             # run a named scenario bake-off
    python -m repro scenario www --num-objects 5000
    python -m repro plan --scenario www --config cfg.json \\
        --save www.npz                       # one strategy -> artifact
    python -m repro plan --load www.npz      # reload the artifact
    python -m repro compare --scenario dfs --strategies krw online
    python -m repro place --scenario www --num-objects 100000 \\
        --jobs 4 --chunk-size 512            # batched catalog placement
    python -m repro backend-sweep --sizes 1000 4000 10000 \\
        --out BENCH_backend_sweep.json       # dense-vs-lazy scaling sweep
    python -m repro dynamic --scenario drift --epochs 5 \\
        --num-objects 60                     # dynamic-layer comparison
    python -m repro dynamic --incremental --tolerance 0.0 \\
        --epochs 5                           # re-place only drifted objects
    python -m repro list                     # what is available

Experiments are the E1--E16 validations mapped to the paper in
docs/EXPERIMENTS.md; scenarios place a full object catalogue with the
registered strategies and print the bill comparison; ``plan`` runs one
registered strategy under a (optionally file-loaded)
:class:`~repro.config.PlanConfig` and can persist/reload the resulting
:class:`~repro.api.PlanReport`; ``compare`` runs many strategies on one
scenario; ``place`` runs the batched
:class:`~repro.engine.PlacementEngine` over a scenario's catalog (with
optional per-object-loop parity check and JSON summary);
``backend-sweep`` measures the dense vs lazy distance backends at chosen
network sizes and can persist a ``BENCH_*.json`` artifact; ``dynamic``
replays an epoch-structured workload and compares clairvoyant-static,
epoch-replanned and online-counting strategies (E15);
``--incremental/--tolerance`` switch the replanner to incremental
re-placement of only the drifted objects (E16).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Sequence

from . import analysis
from .api import PlanReport, Planner, compare_table
from .config import PlanConfig
from .core.approx import approximate_placement
from .core.costs import placement_cost
from .engine import DEFAULT_CHUNK_SIZE, PlacementEngine
from .facility import FL_SOLVERS
from .registry import available_strategies
from .workloads import DYNAMIC_SCENARIOS, SCENARIO_BUILDERS

__all__ = ["main", "EXPERIMENTS", "SCENARIOS"]

EXPERIMENTS: dict[str, Callable[[], "analysis.ExperimentResult"]] = {
    "E1": analysis.run_e1_approx_ratio,
    "E2": analysis.run_e2_tree_dp,
    "E3": analysis.run_e3_restricted_gap,
    "E4": analysis.run_e4_proper_invariants,
    "E5": analysis.run_e5_phase_ablation,
    "E6": analysis.run_e6_baselines,
    "E7": analysis.run_e7_storage_sweep,
    "E8": analysis.run_e8_facility_choice,
    "E9": analysis.run_e9_load_model,
    "E10": analysis.run_e10_scalability,
    "E10B": analysis.run_e10_backend_sweep,
    "E11": analysis.run_e11_simulation_agreement,
    "E12": analysis.run_e12_online_vs_static,
    "E13": analysis.run_e13_capacity_price,
    "E14": analysis.run_e14_catalog_throughput,
    "E15": analysis.run_e15_dynamic_replay,
    "E16": analysis.run_e16_incremental_replan,
}

# the CLI surface is the workloads registry; the alias is the public name
# this module has always exported
SCENARIOS = SCENARIO_BUILDERS

#: The scenario bake-off subset: the static strategies whose bills are
#: comparable at a glance (the slow true-objective heuristics and the
#: order-sensitive online strategy run via ``compare --strategies``).
BAKEOFF_STRATEGIES = ("krw", "single-median", "full-replication", "write-blind")


def _run_experiments(names: Sequence[str], out=sys.stdout) -> int:
    if any(n.lower() == "all" for n in names):
        names = list(EXPERIMENTS)
    for name in names:
        key = name.upper()
        if key not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from "
                  f"{', '.join(EXPERIMENTS)} or 'all'", file=sys.stderr)
            return 2
        result = EXPERIMENTS[key]()
        print(result.render(), file=out)
        print(file=out)
    return 0


def _scenario_kwargs(args) -> dict:
    kwargs = {}
    if getattr(args, "num_objects", None) is not None:
        kwargs["num_objects"] = args.num_objects
    return kwargs


def _run_scenario(name: str, out=sys.stdout, *, num_objects: int | None = None) -> int:
    if name not in SCENARIOS:
        print(f"unknown scenario {name!r}; choose from {', '.join(SCENARIOS)}",
              file=sys.stderr)
        return 2
    kwargs = {} if num_objects is None else {"num_objects": num_objects}
    sc = SCENARIOS[name](**kwargs)
    inst = sc.instance
    print(f"scenario {sc.name}: {inst.num_nodes} nodes, "
          f"{inst.num_objects} objects", file=out)
    reports = Planner().compare(sc, BAKEOFF_STRATEGIES)
    print(compare_table(reports), file=out)
    return 0


def _load_config(args) -> PlanConfig | None:
    """The run's PlanConfig: file base, CLI overrides on top."""
    config = PlanConfig() if args.config is None else PlanConfig.from_file(args.config)
    overrides = {}
    for knob in ("jobs", "fl_solver", "seed"):
        value = getattr(args, knob, None)
        if value is not None:
            overrides[knob] = value
    return config.replace(**overrides) if overrides else config


def _build_scenario(args):
    sc = SCENARIOS[args.scenario](**_scenario_kwargs(args))
    return sc


def _run_plan(args, out=sys.stdout) -> int:
    if args.load_path:
        try:
            report = PlanReport.load(args.load_path)
        except (ValueError, OSError, KeyError) as exc:
            print(f"plan: cannot load {args.load_path}: {exc}", file=sys.stderr)
            return 2
        print(f"loaded {args.load_path}", file=out)
        print(report.render(), file=out)
        return 0
    try:
        config = _load_config(args)
    except (ValueError, TypeError, OSError) as exc:
        print(f"plan: bad config: {exc}", file=sys.stderr)
        return 2
    sc = _build_scenario(args)
    inst = sc.instance
    print(f"scenario {sc.name}: {inst.num_nodes} nodes, "
          f"{inst.num_objects} objects", file=out)
    report = Planner(config).plan(sc, args.strategy)
    print(report.render(), file=out)
    if args.save_path:
        report.save(args.save_path)
        print(f"wrote {args.save_path}", file=out)
    return 0


def _run_compare(args, out=sys.stdout) -> int:
    try:
        config = _load_config(args)
    except (ValueError, TypeError, OSError) as exc:
        print(f"compare: bad config: {exc}", file=sys.stderr)
        return 2
    sc = _build_scenario(args)
    inst = sc.instance
    print(f"scenario {sc.name}: {inst.num_nodes} nodes, "
          f"{inst.num_objects} objects", file=out)
    names = args.strategies or list(available_strategies())
    reports = Planner(config).compare(sc, names)
    print(compare_table(reports), file=out)
    if args.out_path:
        payload = {"scenario": sc.name, "reports": [r.to_dict() for r in reports]}
        with open(args.out_path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out_path}", file=out)
    return 0


def _run_place(args, out=sys.stdout) -> int:
    if args.jobs < 1 or args.chunk_size < 1:
        print("place: --jobs and --chunk-size must be positive", file=sys.stderr)
        return 2
    sc = SCENARIOS[args.scenario](**_scenario_kwargs(args))
    inst = sc.instance
    print(f"scenario {sc.name}: {inst.num_nodes} nodes, "
          f"{inst.num_objects} objects", file=out)

    engine = PlacementEngine(
        inst, fl_solver=args.fl_solver, chunk_size=args.chunk_size,
        jobs=args.jobs,
    )
    t0 = time.perf_counter()
    placement = engine.place()
    elapsed = time.perf_counter() - t0
    summary = {
        "scenario": sc.name,
        "nodes": inst.num_nodes,
        "objects": inst.num_objects,
        "jobs": args.jobs,
        "chunk_size": args.chunk_size,
        "fl_solver": args.fl_solver,
        "time_s": elapsed,
        "objects_per_s": inst.num_objects / elapsed,
        "total_copies": placement.total_copies(),
        "mean_copies": placement.replication_degree(),
    }
    print(f"engine: {elapsed:.2f}s "
          f"({summary['objects_per_s']:.0f} objects/s, jobs={args.jobs}), "
          f"{summary['total_copies']} copies "
          f"(mean {summary['mean_copies']:.2f}/object)", file=out)

    if args.compare_loop:
        t0 = time.perf_counter()
        loop = approximate_placement(inst, fl_solver=args.fl_solver)
        loop_s = time.perf_counter() - t0
        summary["loop_time_s"] = loop_s
        summary["speedup_vs_loop"] = loop_s / elapsed
        summary["matches_loop"] = placement.copy_sets == loop.copy_sets
        print(f"per-object loop: {loop_s:.2f}s -> engine speedup "
              f"{summary['speedup_vs_loop']:.1f}x, identical copy sets: "
              f"{summary['matches_loop']}", file=out)
        if not summary["matches_loop"]:
            print("place: engine/loop copy sets differ", file=sys.stderr)
            return 1
    if args.cost:
        bill = placement_cost(inst, placement, policy="mst")
        summary["cost"] = {
            "storage": bill.storage, "read": bill.read,
            "update": bill.update, "total": bill.total,
        }
        print(f"bill (mst policy): storage {bill.storage:.1f} + read "
              f"{bill.read:.1f} + update {bill.update:.1f} = "
              f"{bill.total:.1f}", file=out)
    if args.out_path:
        with open(args.out_path, "w") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out_path}", file=out)
    return 0


def _run_dynamic(args, out=sys.stdout) -> int:
    if args.epochs < 1 or args.requests_per_epoch < 0:
        print("dynamic: --epochs must be >= 1 and --requests-per-epoch >= 0",
              file=sys.stderr)
        return 2
    if args.tolerance < 0:
        print("dynamic: --tolerance must be non-negative", file=sys.stderr)
        return 2
    try:
        result = analysis.run_e15_dynamic_replay(
            n=args.nodes,
            num_objects=args.num_objects,
            epochs=args.epochs,
            requests_per_epoch=args.requests_per_epoch,
            scenario=args.scenario,
            drift=args.drift,
            write_fraction=args.write_fraction,
            threshold=args.threshold,
            seed=args.seed,
            fl_solver=args.fl_solver,
            jobs=args.jobs,
            compare_loop=not args.no_loop,
            replan_mode="incremental" if args.incremental else "full",
            replan_tolerance=args.tolerance,
            redraw=args.redraw,
        )
    except ValueError as exc:
        print(f"dynamic: {exc}", file=sys.stderr)
        return 2
    print(result.render(), file=out)
    if args.out_path:
        result.save_json(args.out_path)
        print(f"wrote {args.out_path}", file=out)
    return 0


def _run_backend_sweep(args, out=sys.stdout) -> int:
    try:
        result = analysis.run_e10_backend_sweep(
            sizes=tuple(args.sizes),
            topology=args.topology,
            dense_limit=args.dense_limit,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"backend-sweep: {exc}", file=sys.stderr)
        return 2
    print(result.render(), file=out)
    if args.out_path:
        result.save_json(args.out_path)
        print(f"wrote {args.out_path}", file=out)
    return 0


def main(argv: Sequence[str] | None = None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Approximation Algorithms for Data "
        "Management in Networks' (SPAA 2001)",
    )
    sub = parser.add_subparsers(dest="command")

    p_exp = sub.add_parser("experiment", help="run evaluation experiments")
    p_exp.add_argument("names", nargs="+", help="E1..E15 or 'all'")

    p_sc = sub.add_parser("scenario", help="run a named scenario bake-off")
    p_sc.add_argument("name", choices=sorted(SCENARIOS))
    p_sc.add_argument("--num-objects", type=int, default=None,
                      help="catalog size (scenario default when omitted); "
                      "large catalogs use the Zipf-weighted columnar split")

    # the problem/config options plan and compare share (the knobs
    # _load_config reads must stay identical across the two commands)
    planner_opts = argparse.ArgumentParser(add_help=False)
    planner_opts.add_argument("--scenario", choices=sorted(SCENARIOS),
                              default="www")
    planner_opts.add_argument("--num-objects", type=int, default=None,
                              help="catalog size (scenario default when "
                              "omitted)")
    planner_opts.add_argument("--config", default=None, metavar="FILE",
                              help="PlanConfig file (*.json or *.toml)")
    planner_opts.add_argument("--jobs", type=int, default=None,
                              help="override the config's worker count")
    planner_opts.add_argument("--fl-solver", choices=sorted(FL_SOLVERS),
                              default=None,
                              help="override the config's phase-1 solver")
    planner_opts.add_argument("--seed", type=int, default=None,
                              help="override the config's event-order seed")

    p_plan = sub.add_parser(
        "plan",
        parents=[planner_opts],
        help="run one registered strategy under a PlanConfig; save/load "
        "the resulting PlanReport artifact",
    )
    p_plan.add_argument("--strategy", choices=available_strategies(),
                        default="krw")
    p_plan.add_argument("--save", dest="save_path", default=None,
                        help="write the PlanReport here (*.npz or *.json)")
    p_plan.add_argument("--load", dest="load_path", default=None,
                        help="reload and print a saved PlanReport instead "
                        "of planning")

    p_cmp = sub.add_parser(
        "compare",
        parents=[planner_opts],
        help="run several registered strategies on one scenario",
    )
    p_cmp.add_argument("--strategies", nargs="+", default=None,
                       choices=available_strategies(),
                       help="strategy names (default: every registered one)")
    p_cmp.add_argument("--out", dest="out_path", default=None,
                       help="also write every report as JSON here")

    p_pl = sub.add_parser(
        "place",
        help="place a scenario's object catalog with the batched engine",
    )
    p_pl.add_argument("--scenario", choices=sorted(SCENARIOS), default="www")
    p_pl.add_argument("--num-objects", type=int, default=None,
                      help="catalog size (scenario default when omitted)")
    p_pl.add_argument("--jobs", type=int, default=1,
                      help="worker processes (1 = in-process)")
    p_pl.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
                      help="objects per engine chunk")
    p_pl.add_argument("--fl-solver", choices=sorted(FL_SOLVERS),
                      default="local_search")
    p_pl.add_argument("--compare-loop", action="store_true",
                      help="also run the per-object loop and verify parity")
    p_pl.add_argument("--cost", action="store_true",
                      help="bill the placement under the mst policy")
    p_pl.add_argument("--out", dest="out_path", default=None,
                      help="write a JSON summary here")

    p_bs = sub.add_parser(
        "backend-sweep",
        help="measure dense vs lazy distance backends at chosen sizes",
    )
    p_bs.add_argument("--sizes", nargs="+", type=int, default=[500, 1500, 4000],
                      help="target network sizes (nodes)")
    p_bs.add_argument("--topology", choices=("transit_stub", "power_law"),
                      default="transit_stub")
    p_bs.add_argument("--dense-limit", type=int, default=4000,
                      help="skip the dense backend above this many nodes")
    p_bs.add_argument("--seed", type=int, default=7)
    p_bs.add_argument("--out", dest="out_path", default=None,
                      help="also write a BENCH_*.json artifact here")

    p_dy = sub.add_parser(
        "dynamic",
        help="replay an epoch-structured workload: static vs replan vs online",
    )
    p_dy.add_argument("--scenario", choices=("drift", "flash"), default="drift",
                      help="popularity churn or a one-epoch flash crowd")
    p_dy.add_argument("--nodes", type=int, default=200,
                      help="target network size (transit-stub)")
    p_dy.add_argument("--num-objects", type=int, default=24)
    p_dy.add_argument("--epochs", type=int, default=4)
    p_dy.add_argument("--requests-per-epoch", type=int, default=1200)
    p_dy.add_argument("--drift", type=float, default=0.2,
                      help="fraction of objects swapping popularity per epoch")
    p_dy.add_argument("--write-fraction", type=float, default=0.1)
    p_dy.add_argument("--threshold", type=int, default=3,
                      help="online strategy's replication threshold")
    p_dy.add_argument("--fl-solver", choices=sorted(FL_SOLVERS),
                      default="local_search")
    p_dy.add_argument("--jobs", type=int, default=1,
                      help="engine worker processes per (re)placement")
    p_dy.add_argument("--incremental", action="store_true",
                      help="epoch-replan re-places only drifted objects "
                      "(replan_mode='incremental'); full catalog re-solve "
                      "when omitted")
    p_dy.add_argument("--tolerance", type=float, default=0.0,
                      help="normalized L1 demand-drift threshold below "
                      "which an object keeps its copies (0: exact, "
                      "bit-identical to the full re-solve)")
    p_dy.add_argument("--redraw", choices=("all", "changed"), default=None,
                      help="per-epoch demand resampling: 'all' redraws "
                      "every row, 'changed' only churned objects' rows "
                      "(default: 'changed' with --incremental, else 'all')")
    p_dy.add_argument("--seed", type=int, default=29)
    p_dy.add_argument("--no-loop", action="store_true",
                      help="skip the (slow) hop-by-hop replay baseline")
    p_dy.add_argument("--out", dest="out_path", default=None,
                      help="write the experiment table as JSON here")

    sub.add_parser("list", help="list experiments, scenarios and strategies")

    args = parser.parse_args(argv)
    if args.command == "experiment":
        return _run_experiments(args.names, out=out)
    if args.command == "scenario":
        return _run_scenario(args.name, out=out, num_objects=args.num_objects)
    if args.command == "plan":
        return _run_plan(args, out=out)
    if args.command == "compare":
        return _run_compare(args, out=out)
    if args.command == "place":
        return _run_place(args, out=out)
    if args.command == "backend-sweep":
        return _run_backend_sweep(args, out=out)
    if args.command == "dynamic":
        return _run_dynamic(args, out=out)
    if args.command == "list":
        print("experiments:      ", ", ".join(EXPERIMENTS), file=out)
        print("scenarios:        ", ", ".join(SCENARIOS), file=out)
        print("dynamic scenarios:", ", ".join(DYNAMIC_SCENARIOS), file=out)
        print("strategies:       ", ", ".join(available_strategies()), file=out)
        return 0
    parser.print_help(out)
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
