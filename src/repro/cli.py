"""Command-line interface: run experiments and scenarios from the shell.

Usage::

    python -m repro experiment E1 [E3 ...]   # regenerate experiment tables
    python -m repro experiment all
    python -m repro scenario www             # run a named scenario bake-off
    python -m repro scenario www --num-objects 5000
    python -m repro plan --scenario www --config cfg.json \\
        --save www.npz                       # one strategy -> artifact
    python -m repro plan --load www.npz      # reload the artifact
    python -m repro compare --scenario dfs --strategies krw online
    python -m repro place --scenario www --num-objects 100000 \\
        --jobs 4 --chunk-size 512            # batched catalog placement
    python -m repro place --scenario www --shards 8 --portals 4 \\
        --jobs 4                             # hierarchical sharded solve
    python -m repro plan --scenario www --strategy krw-sharded --shards 4
    python -m repro backend-sweep --sizes 1000 4000 10000 \\
        --out BENCH_backend_sweep.json       # dense-vs-lazy scaling sweep
    python -m repro dynamic --scenario drift --epochs 5 \\
        --num-objects 60                     # dynamic-layer comparison
    python -m repro dynamic --incremental --tolerance 0.0 \\
        --epochs 5                           # re-place only drifted objects
    python -m repro serve run --instance www.npz --spool spool/ \\
        --checkpoint warm.npz                # live daemon: stdin/stdout loop
    python -m repro serve replay --scenario drift --epochs 4 \\
        --incremental --tolerance 0 --compare  # daemon-vs-replanner parity
    python -m repro bench run --sweep sweep.json --store .repro-bench \\
        --jobs 2                             # cached, resumable trial sweep
    python -m repro bench gate --tier smoke  # BENCH_*.json regression gate
    python -m repro bench list               # experiments, gates, cache
    python -m repro list                     # what is available

Experiments are the E1--E16 validations mapped to the paper in
docs/EXPERIMENTS.md; scenarios place a full object catalogue with the
registered strategies and print the bill comparison; ``plan`` runs one
registered strategy under a (optionally file-loaded)
:class:`~repro.config.PlanConfig` and can persist/reload the resulting
:class:`~repro.api.PlanReport`; ``compare`` runs many strategies on one
scenario; ``place`` runs the batched
:class:`~repro.engine.PlacementEngine` over a scenario's catalog (with
optional per-object-loop parity check and JSON summary);
``backend-sweep`` measures the dense vs lazy distance backends at chosen
network sizes and can persist a ``BENCH_*.json`` artifact; ``dynamic``
replays an epoch-structured workload and compares clairvoyant-static,
epoch-replanned and online-counting strategies (E15);
``--incremental/--tolerance`` switch the replanner to incremental
re-placement of only the drifted objects (E16); ``serve`` is the live
subsystem (:mod:`repro.serve`): ``run`` keeps a
:class:`~repro.serve.PlacementDaemon` answering placement/nearest
lookups over stdin/stdout while ingesting spool-directory request
batches and checkpointing warm state (resumed bit-identically on
restart), ``replay`` drives one from a generated dynamic workload and
``--compare`` verifies tolerance-0 parity with the epoch replanner
(E19); ``bench`` is the
declarative experiment harness (:mod:`repro.bench`): ``run`` executes a
sweep of trials with results cached on disk by canonical config hash
(interrupted sweeps resume), ``gate`` validates the committed
``benchmarks/BENCH_*.json`` artifacts and re-runs a budgeted smoke tier
of each gated experiment, exiting ``1`` on regression and ``3`` on a
missing artifact, and ``list`` shows experiments, gates and the cache.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Sequence

from . import analysis
from .api import PlanReport, Planner, compare_table
from .bench import EXPERIMENT_RUNNERS
from .config import KERNEL_MODES, PARTITION_METHODS, PlanConfig
from .core.approx import approximate_placement
from .costmodel import available_cost_models, get_cost_model
from .engine import DEFAULT_CHUNK_SIZE, PlacementEngine
from .facility import FL_SOLVERS
from .registry import available_strategies
from .workloads import DYNAMIC_SCENARIOS, SCENARIO_BUILDERS

__all__ = ["main", "EXPERIMENTS", "SCENARIOS"]

#: The CLI's experiment registry rides the bench harness's -- one table
#: of E-series runners for ``experiment``, ``bench run`` and the gate.
EXPERIMENTS: dict[str, Callable[[], "analysis.ExperimentResult"]] = dict(
    EXPERIMENT_RUNNERS
)

# the CLI surface is the workloads registry; the alias is the public name
# this module has always exported
SCENARIOS = SCENARIO_BUILDERS

#: The scenario bake-off subset: the static strategies whose bills are
#: comparable at a glance (the slow true-objective heuristics and the
#: order-sensitive online strategy run via ``compare --strategies``).
BAKEOFF_STRATEGIES = ("krw", "single-median", "full-replication", "write-blind")


def _run_experiments(names: Sequence[str], out=sys.stdout) -> int:
    if any(n.lower() == "all" for n in names):
        names = list(EXPERIMENTS)
    for name in names:
        key = name.upper()
        if key not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from "
                  f"{', '.join(EXPERIMENTS)} or 'all'", file=sys.stderr)
            return 2
        result = EXPERIMENTS[key]()
        print(result.render(), file=out)
        print(file=out)
    return 0


def _scenario_kwargs(args) -> dict:
    kwargs = {}
    if getattr(args, "num_objects", None) is not None:
        kwargs["num_objects"] = args.num_objects
    return kwargs


def _run_scenario(name: str, out=sys.stdout, *, num_objects: int | None = None) -> int:
    if name not in SCENARIOS:
        print(f"unknown scenario {name!r}; choose from {', '.join(SCENARIOS)}",
              file=sys.stderr)
        return 2
    kwargs = {} if num_objects is None else {"num_objects": num_objects}
    sc = SCENARIOS[name](**kwargs)
    inst = sc.instance
    print(f"scenario {sc.name}: {inst.num_nodes} nodes, "
          f"{inst.num_objects} objects", file=out)
    reports = Planner().compare(sc, BAKEOFF_STRATEGIES)
    print(compare_table(reports), file=out)
    return 0


def _load_config(args) -> PlanConfig | None:
    """The run's PlanConfig: file base, CLI overrides on top."""
    config = PlanConfig() if args.config is None else PlanConfig.from_file(args.config)
    overrides = {}
    for knob in ("jobs", "fl_solver", "seed", "kernels", "cache_rows",
                 "shared_memory", "num_shards", "portals_per_shard",
                 "partition", "cost_model"):
        value = getattr(args, knob, None)
        if value is not None:
            overrides[knob] = value
    return config.replace(**overrides) if overrides else config


def _build_scenario(args):
    sc = SCENARIOS[args.scenario](**_scenario_kwargs(args))
    return sc


def _run_plan(args, out=sys.stdout) -> int:
    if args.load_path:
        try:
            report = PlanReport.load(args.load_path)
        except (ValueError, OSError, KeyError) as exc:
            print(f"plan: cannot load {args.load_path}: {exc}", file=sys.stderr)
            return 2
        print(f"loaded {args.load_path}", file=out)
        print(report.render(), file=out)
        return 0
    try:
        config = _load_config(args)
    except (ValueError, TypeError, OSError) as exc:
        print(f"plan: bad config: {exc}", file=sys.stderr)
        return 2
    sc = _build_scenario(args)
    inst = sc.instance
    print(f"scenario {sc.name}: {inst.num_nodes} nodes, "
          f"{inst.num_objects} objects", file=out)
    report = Planner(config).plan(sc, args.strategy)
    print(report.render(), file=out)
    _print_extras(report, out)
    if args.save_path:
        report.save(args.save_path)
        print(f"wrote {args.save_path}", file=out)
    return 0


def _run_compare(args, out=sys.stdout) -> int:
    try:
        config = _load_config(args)
    except (ValueError, TypeError, OSError) as exc:
        print(f"compare: bad config: {exc}", file=sys.stderr)
        return 2
    sc = _build_scenario(args)
    inst = sc.instance
    print(f"scenario {sc.name}: {inst.num_nodes} nodes, "
          f"{inst.num_objects} objects", file=out)
    names = args.strategies or list(available_strategies())
    reports = Planner(config).compare(sc, names)
    print(compare_table(reports), file=out)
    if args.out_path:
        payload = {"scenario": sc.name, "reports": [r.to_dict() for r in reports]}
        with open(args.out_path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out_path}", file=out)
    return 0


def _print_extras(report, out) -> None:
    """Run-provenance lines under a plan table (kernel dispatch, worker
    transport, lazy-backend row-cache hit rate)."""
    extras = report.extras or {}
    kernels = extras.get("kernels")
    if kernels:
        print(f"kernels: mode={kernels['mode']} "
              f"(numba {'available' if kernels['numba_available'] else 'absent'})",
              file=out)
    shm = extras.get("shared_memory")
    if shm and shm.get("used") is not None:
        print(f"shared memory: requested={shm['requested']} used={shm['used']}",
              file=out)
    cache = extras.get("row_cache")
    if cache:
        rate = cache["hit_rate"]
        rate_s = "n/a" if rate is None else f"{rate:.1%}"
        print(f"row cache: {cache['hits']} hits / {cache['misses']} misses "
              f"(hit rate {rate_s}, cache_rows={cache['cache_rows']})", file=out)
    sharded = extras.get("sharded")
    if sharded:
        if sharded.get("degenerate"):
            print(f"sharded: degenerate (num_shards=1, "
                  f"partition={sharded['partition']}) -- global solve",
                  file=out)
        else:
            sizes = sharded["shard_sizes"]
            print(f"sharded: {sharded['num_shards']} shards "
                  f"(sizes {min(sizes)}..{max(sizes)}), "
                  f"{sharded['num_portals']} portals, "
                  f"{sharded['spanning_objects']} spanning objects, "
                  f"stitch dropped {sharded['stitch_dropped']} copies",
                  file=out)


def _run_place(args, out=sys.stdout) -> int:
    if args.jobs < 1 or args.chunk_size < 1:
        print("place: --jobs and --chunk-size must be positive", file=sys.stderr)
        return 2
    if args.num_shards < 1 or args.portals_per_shard < 1:
        print("place: --shards and --portals must be positive", file=sys.stderr)
        return 2
    if args.compare_loop and args.num_shards > 1 and args.partition != "none":
        print("place: --compare-loop checks global-solve parity; "
              "drop it or use --shards 1", file=sys.stderr)
        return 2
    sc = SCENARIOS[args.scenario](**_scenario_kwargs(args))
    inst = sc.instance
    print(f"scenario {sc.name}: {inst.num_nodes} nodes, "
          f"{inst.num_objects} objects", file=out)

    engine = PlacementEngine(
        inst, fl_solver=args.fl_solver, chunk_size=args.chunk_size,
        jobs=args.jobs, shared_memory=args.shared_memory,
        kernels=args.kernels,
    )
    sharded = args.num_shards > 1 and args.partition != "none"
    shard_info = None
    t0 = time.perf_counter()
    if sharded:
        from .graphs.partition import partition_instance

        part = partition_instance(
            inst, num_shards=args.num_shards,
            portals_per_shard=args.portals_per_shard,
            method=args.partition,
        )
        placement, shard_info = engine.place_sharded(part)
    else:
        placement = engine.place()
    elapsed = time.perf_counter() - t0
    summary = {
        "scenario": sc.name,
        "nodes": inst.num_nodes,
        "objects": inst.num_objects,
        "jobs": args.jobs,
        "chunk_size": args.chunk_size,
        "fl_solver": args.fl_solver,
        "kernels": args.kernels,
        "shared_memory_used": engine.used_shared_memory,
        "time_s": elapsed,
        "objects_per_s": inst.num_objects / elapsed,
        "total_copies": placement.total_copies(),
        "mean_copies": placement.replication_degree(),
    }
    print(f"engine: {elapsed:.2f}s "
          f"({summary['objects_per_s']:.0f} objects/s, jobs={args.jobs}), "
          f"{summary['total_copies']} copies "
          f"(mean {summary['mean_copies']:.2f}/object)", file=out)
    if shard_info is not None:
        summary["sharded"] = {
            k: v for k, v in shard_info.items() if k != "row_cache"
        }
        print(f"sharded: {shard_info['num_shards']} shards, "
              f"{shard_info['num_portals']} portals, "
              f"{shard_info['spanning_objects']} spanning objects, "
              f"stitch dropped {shard_info['stitch_dropped']} copies",
              file=out)

    if args.compare_loop:
        t0 = time.perf_counter()
        loop = approximate_placement(inst, fl_solver=args.fl_solver)
        loop_s = time.perf_counter() - t0
        summary["loop_time_s"] = loop_s
        summary["speedup_vs_loop"] = loop_s / elapsed
        summary["matches_loop"] = placement.copy_sets == loop.copy_sets
        print(f"per-object loop: {loop_s:.2f}s -> engine speedup "
              f"{summary['speedup_vs_loop']:.1f}x, identical copy sets: "
              f"{summary['matches_loop']}", file=out)
        if not summary["matches_loop"]:
            print("place: engine/loop copy sets differ", file=sys.stderr)
            return 1
    if args.cost:
        model = get_cost_model(getattr(args, "cost_model", None) or "krw")
        bill = model.bill_placement(inst, placement, policy="mst")
        summary["cost"] = {
            "model": model.name,
            "storage": bill.storage, "read": bill.read,
            "update": bill.update, "total": bill.total,
        }
        print(f"bill ({model.name}, mst policy): storage {bill.storage:.1f} "
              f"+ read {bill.read:.1f} + update {bill.update:.1f} = "
              f"{bill.total:.1f}", file=out)
    if args.out_path:
        with open(args.out_path, "w") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out_path}", file=out)
    return 0


def _run_dynamic(args, out=sys.stdout) -> int:
    if args.epochs < 1 or args.requests_per_epoch < 0:
        print("dynamic: --epochs must be >= 1 and --requests-per-epoch >= 0",
              file=sys.stderr)
        return 2
    if args.tolerance < 0:
        print("dynamic: --tolerance must be non-negative", file=sys.stderr)
        return 2
    try:
        result = analysis.run_e15_dynamic_replay(
            n=args.nodes,
            num_objects=args.num_objects,
            epochs=args.epochs,
            requests_per_epoch=args.requests_per_epoch,
            scenario=args.scenario,
            drift=args.drift,
            write_fraction=args.write_fraction,
            threshold=args.threshold,
            seed=args.seed,
            fl_solver=args.fl_solver,
            jobs=args.jobs,
            compare_loop=not args.no_loop,
            replan_mode="incremental" if args.incremental else "full",
            replan_tolerance=args.tolerance,
            redraw=args.redraw,
        )
    except ValueError as exc:
        print(f"dynamic: {exc}", file=sys.stderr)
        return 2
    print(result.render(), file=out)
    if args.out_path:
        result.save_json(args.out_path)
        print(f"wrote {args.out_path}", file=out)
    return 0


def _run_backend_sweep(args, out=sys.stdout) -> int:
    try:
        result = analysis.run_e10_backend_sweep(
            sizes=tuple(args.sizes),
            topology=args.topology,
            dense_limit=args.dense_limit,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"backend-sweep: {exc}", file=sys.stderr)
        return 2
    print(result.render(), file=out)
    if args.out_path:
        result.save_json(args.out_path)
        print(f"wrote {args.out_path}", file=out)
    return 0


def _serve_config(args) -> PlanConfig:
    """The daemon's PlanConfig: file base plus serve-relevant overrides."""
    config = _load_config(args)
    overrides = {}
    if getattr(args, "incremental", False):
        overrides["replan_mode"] = "incremental"
    if getattr(args, "tolerance", None) is not None:
        overrides["replan_tolerance"] = args.tolerance
    if getattr(args, "checkpoint_every", None) is not None:
        overrides["serve_checkpoint_every"] = args.checkpoint_every
    return config.replace(**overrides) if overrides else config


def _serve_metric(graph, backend: str, config: PlanConfig):
    from .graphs.backend import LazyMetric
    from .graphs.metric import Metric

    if backend == "lazy":
        return LazyMetric.from_graph(graph, cache_rows=config.cache_rows)
    return Metric.from_graph(graph)


def _run_serve_replay(args, out=sys.stdout) -> int:
    """Drive a daemon from a generated DynamicWorkload; optionally check
    tolerance-0 parity against the EpochReplanner (the CI smoke)."""
    from .graphs import generators
    from .serve import PlacementDaemon, compare_with_replanner, replay_workload
    from .workloads import uniform_storage_costs
    from .workloads.dynamic import drifting_zipf_catalog, flash_crowd

    try:
        config = _serve_config(args)
    except (ValueError, TypeError, OSError) as exc:
        print(f"serve replay: bad config: {exc}", file=sys.stderr)
        return 2
    graph = generators.sized_transit_stub_graph(args.nodes, seed=args.seed)
    n = graph.number_of_nodes()
    rpe = args.requests_per_epoch or 100 * args.num_objects
    make = drifting_zipf_catalog if args.scenario == "drift" else flash_crowd
    kwargs = dict(
        epochs=args.epochs, seed=args.seed, requests_per_epoch=rpe,
        write_fraction=args.write_fraction, redraw="changed",
    )
    if args.scenario == "drift":
        kwargs["drift"] = args.drift
    workload = make(n, args.num_objects, **kwargs)
    # the E16 sizing convention: prices scaled so replication is a real
    # trade-off at this request volume
    storage_costs = uniform_storage_costs(
        n, max(2.0, 0.5 * rpe / args.num_objects)
    )
    metric = _serve_metric(graph, args.backend, config)

    if args.compare:
        verdict = compare_with_replanner(
            graph, metric, storage_costs, workload, config
        )
        print(
            f"daemon {verdict['daemon_total']:.6f} vs replanner "
            f"{verdict['replanner_total']:.6f} "
            f"(ratio {verdict['cost_ratio']:.12f}); "
            f"placements {'identical' if verdict['identical'] else 'DIVERGED'}",
            file=out,
        )
        if args.out_path:
            from .serialize import canonical_json_dumps

            Path(args.out_path).write_text(
                canonical_json_dumps(verdict) + "\n"
            )
            print(f"wrote {args.out_path}", file=out)
        if config.replan_tolerance == 0.0 and not verdict["identical"]:
            print(
                "serve replay: tolerance-0 daemon diverged from the "
                "EpochReplanner", file=sys.stderr,
            )
            return 1
        return 0

    daemon = PlacementDaemon(
        storage_costs, args.num_objects, metric=metric, graph=graph,
        config=config, checkpoint_path=args.checkpoint,
    )
    try:
        records = replay_workload(daemon, workload)
        stats = daemon.stats()
    finally:
        daemon.close()
    for rec in records:
        print(
            f"epoch {rec['epoch']}: generation {rec['generation']}, "
            f"replaced {rec['replaced']}, serve {rec['serve_cost']:.3f}, "
            f"migration {rec['migration_cost']:.3f}", file=out,
        )
    print(
        f"total {stats['total_cost']:.6f} over {stats['epochs_published']} "
        f"epochs ({stats['events_ingested']} events)", file=out,
    )
    if args.checkpoint:
        print(f"warm state in {args.checkpoint}", file=out)
    if args.out_path:
        from .serialize import canonical_json_dumps

        Path(args.out_path).write_text(
            canonical_json_dumps({"stats": stats, "epochs": records}) + "\n"
        )
        print(f"wrote {args.out_path}", file=out)
    return 0


def _serve_command_loop(daemon, in_stream, out) -> None:
    """The stdin/stdout request loop of ``repro serve run`` -- one
    command per line in, one JSON object per line out."""
    from .serve import read_spool_file

    def reply(payload: dict) -> None:
        print(json.dumps(payload), file=out, flush=True)

    for line in in_stream:
        parts = line.split()
        if not parts:
            continue
        cmd, *rest = parts
        try:
            if cmd == "quit":
                reply({"ok": True, "command": "quit"})
                break
            if cmd == "placement":
                (obj,) = rest
                reply({
                    "ok": True,
                    "copies": list(daemon.placement(int(obj))),
                    "generation": daemon.snapshot().generation,
                })
            elif cmd == "nearest":
                obj, node = rest
                reply({"ok": True, **daemon.lookup(int(obj), int(node)).to_dict()})
            elif cmd == "stats":
                reply({"ok": True, **daemon.stats()})
            elif cmd == "ingest":
                (path,) = rest
                reply({"ok": True, **daemon.ingest(read_spool_file(path))})
            elif cmd == "end-epoch":
                epoch = daemon.end_epoch(wait=not (rest and rest[0] == "async"))
                reply({"ok": True, "epoch": epoch})
            elif cmd == "checkpoint":
                cp = daemon.checkpoint_now(rest[0] if rest else None)
                reply({
                    "ok": True, "generation": cp.generation,
                    "epochs_published": cp.epochs_published,
                })
            else:
                reply({"ok": False, "error": f"unknown command {cmd!r}"})
        except (ValueError, RuntimeError, OSError, KeyError) as exc:
            reply({"ok": False, "error": str(exc)})


def _run_serve_run(args, out=sys.stdout, in_stream=None) -> int:
    """A metric-only daemon over a saved instance: spool ingest plus the
    stdin/stdout request loop (no network dependency)."""
    from .serialize import load_instance
    from .serve import PlacementDaemon, read_spool_file, spool_files

    try:
        config = _serve_config(args)
    except (ValueError, TypeError, OSError) as exc:
        print(f"serve run: bad config: {exc}", file=sys.stderr)
        return 2
    try:
        instance = load_instance(args.instance)
    except (ValueError, OSError, KeyError) as exc:
        print(f"serve run: cannot load {args.instance}: {exc}", file=sys.stderr)
        return 2

    resume = args.checkpoint is not None and Path(args.checkpoint).exists()
    if resume:
        explicit = (
            args.config is not None or args.incremental
            or args.tolerance is not None or args.checkpoint_every is not None
        )
        daemon = PlacementDaemon.restore(
            args.checkpoint,
            storage_costs=instance.storage_costs,
            metric=instance.metric,
            config=config if explicit else None,
        )
    else:
        daemon = PlacementDaemon(
            instance.storage_costs,
            instance.num_objects,
            metric=instance.metric,
            config=config,
            checkpoint_path=args.checkpoint,
        )
    daemon.install_signal_handlers()
    status = daemon.stats()
    print(
        f"serving {status['num_objects']} objects on "
        f"{status['num_nodes']} nodes "
        f"(generation {status['generation']}"
        f"{', resumed' if resume else ''})",
        file=sys.stderr,
    )
    try:
        if args.spool:
            for batch in spool_files(args.spool):
                receipt = daemon.ingest(read_spool_file(batch))
                print(
                    f"ingested {batch.name}: {receipt['events']} events",
                    file=sys.stderr,
                )
                if args.epoch_per_file:
                    daemon.end_epoch(wait=True)
        _serve_command_loop(daemon, in_stream or sys.stdin, out)
    finally:
        daemon.close()
    return 0


def _run_serve(args, out=sys.stdout) -> int:
    if args.serve_command == "replay":
        return _run_serve_replay(args, out=out)
    if args.serve_command == "run":
        return _run_serve_run(args, out=out)
    print("serve: choose a subcommand (run, replay)", file=sys.stderr)
    return 2


def _bench_sweep_from_args(args):
    """The declared trial set of ``bench run`` (sweep file or one-off)."""
    from .bench import SweepConfig, TrialConfig

    if args.sweep_path:
        return SweepConfig.from_file(args.sweep_path).trials()
    if args.experiment:
        params = json.loads(args.params) if args.params else {}
        if not isinstance(params, dict):
            raise TypeError("--params must hold a JSON object")
        return [TrialConfig.make(args.experiment, **params)]
    raise TypeError("bench run needs --sweep FILE or --experiment ID")


def _run_bench_run(args, out=sys.stdout) -> int:
    from .bench import EXPERIMENT_RUNNERS, TrialStore, run_sweep

    try:
        trials = _bench_sweep_from_args(args)
    except (TypeError, ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"bench run: bad sweep: {exc}", file=sys.stderr)
        return 2
    unknown = sorted({t.experiment for t in trials} - set(EXPERIMENT_RUNNERS))
    if unknown:
        print(f"bench run: unknown experiment(s) {unknown}; choose from "
              f"{', '.join(EXPERIMENT_RUNNERS)}", file=sys.stderr)
        return 2
    store = TrialStore(args.store)
    outcomes = run_sweep(
        trials, store, jobs=args.jobs, limit=args.limit,
        generated_at=args.timestamp,
        progress=lambda msg: print(msg, file=out),
    )
    ran = sum(1 for o in outcomes if o.status == "ran")
    cached = sum(1 for o in outcomes if o.status == "cached")
    pending = sum(1 for o in outcomes if o.status == "pending")
    print(f"bench run: {len(outcomes)} trial(s): {ran} ran, {cached} cached, "
          f"{pending} pending (store: {store.root})", file=out)
    if args.show:
        for outcome in outcomes:
            if outcome.record is not None:
                print(outcome.record.to_experiment_result().render(), file=out)
                print(file=out)
    return 0


def _run_bench_gate(args, out=sys.stdout) -> int:
    from .bench import TrialStore, run_gate

    try:
        report = run_gate(
            tier=args.tier,
            artifact_dir=args.artifact_dir,
            store=TrialStore(args.store),
            only=args.only,
            jobs=args.jobs,
            generated_at=args.timestamp,
            progress=lambda msg: print(msg, file=out),
        )
    except ValueError as exc:
        print(f"bench gate: {exc}", file=sys.stderr)
        return 2
    text = report.render()
    print(text, file=out)
    if args.report_path:
        with open(args.report_path, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.report_path}", file=out)
    return report.exit_code


def _run_bench_list(args, out=sys.stdout) -> int:
    from .bench import EXPERIMENT_RUNNERS, GATES, TrialStore

    print("experiments:", ", ".join(EXPERIMENT_RUNNERS), file=out)
    print("gated:", file=out)
    for spec in GATES.values():
        print(f"  {spec.exp_id:5s} {spec.artifact}  "
              f"({len(spec.checks)} checks)", file=out)
    store = TrialStore(args.store)
    records = store.records()
    print(f"trial store {store.root}: {len(records)} cached trial(s)",
          file=out)
    for record in records:
        print(f"  {record.config.label()}  {record.elapsed_s:.2f}s",
              file=out)
    return 0


def _run_bench(args, out=sys.stdout) -> int:
    if args.bench_command == "run":
        return _run_bench_run(args, out=out)
    if args.bench_command == "gate":
        return _run_bench_gate(args, out=out)
    if args.bench_command == "list":
        return _run_bench_list(args, out=out)
    print("bench: choose a subcommand: run, gate or list", file=sys.stderr)
    return 2


def main(argv: Sequence[str] | None = None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Approximation Algorithms for Data "
        "Management in Networks' (SPAA 2001)",
    )
    sub = parser.add_subparsers(dest="command")

    p_exp = sub.add_parser("experiment", help="run evaluation experiments")
    p_exp.add_argument("names", nargs="+", help="E1..E15 or 'all'")

    p_sc = sub.add_parser("scenario", help="run a named scenario bake-off")
    p_sc.add_argument("name", choices=sorted(SCENARIOS))
    p_sc.add_argument("--num-objects", type=int, default=None,
                      help="catalog size (scenario default when omitted); "
                      "large catalogs use the Zipf-weighted columnar split")

    # the problem/config options plan and compare share (the knobs
    # _load_config reads must stay identical across the two commands)
    planner_opts = argparse.ArgumentParser(add_help=False)
    planner_opts.add_argument("--scenario", choices=sorted(SCENARIOS),
                              default="www")
    planner_opts.add_argument("--num-objects", type=int, default=None,
                              help="catalog size (scenario default when "
                              "omitted)")
    planner_opts.add_argument("--config", default=None, metavar="FILE",
                              help="PlanConfig file (*.json or *.toml)")
    planner_opts.add_argument("--jobs", type=int, default=None,
                              help="override the config's worker count")
    planner_opts.add_argument("--fl-solver", choices=sorted(FL_SOLVERS),
                              default=None,
                              help="override the config's phase-1 solver")
    planner_opts.add_argument("--seed", type=int, default=None,
                              help="override the config's event-order seed")
    planner_opts.add_argument("--kernels", choices=KERNEL_MODES, default=None,
                              help="override the config's hot-loop dispatch "
                              "(auto | numpy | numba)")
    planner_opts.add_argument("--shared-memory", default=None,
                              action=argparse.BooleanOptionalAction,
                              help="override the config's zero-copy worker "
                              "transport (--no-shared-memory forces the "
                              "pickle path)")
    planner_opts.add_argument("--cache-rows", dest="cache_rows", type=int,
                              default=None,
                              help="override the config's lazy-backend row "
                              "cache capacity")
    planner_opts.add_argument("--shards", dest="num_shards", type=int,
                              default=None,
                              help="override the config's shard count "
                              "(krw-sharded: 1 = global solve)")
    planner_opts.add_argument("--portals", dest="portals_per_shard", type=int,
                              default=None,
                              help="override the config's boundary portals "
                              "per shard")
    planner_opts.add_argument("--partition", choices=PARTITION_METHODS,
                              default=None,
                              help="override the config's partition method "
                              "(auto | transit_stub | bfs | none)")
    planner_opts.add_argument("--cost-model", dest="cost_model",
                              choices=available_cost_models(), default=None,
                              help="override the config's accounting model "
                              "(krw = the paper's bill; see `repro list`)")

    p_plan = sub.add_parser(
        "plan",
        parents=[planner_opts],
        help="run one registered strategy under a PlanConfig; save/load "
        "the resulting PlanReport artifact",
    )
    p_plan.add_argument("--strategy", choices=available_strategies(),
                        default="krw")
    p_plan.add_argument("--save", dest="save_path", default=None,
                        help="write the PlanReport here (*.npz or *.json)")
    p_plan.add_argument("--load", dest="load_path", default=None,
                        help="reload and print a saved PlanReport instead "
                        "of planning")

    p_cmp = sub.add_parser(
        "compare",
        parents=[planner_opts],
        help="run several registered strategies on one scenario",
    )
    p_cmp.add_argument("--strategies", nargs="+", default=None,
                       choices=available_strategies(),
                       help="strategy names (default: every registered one)")
    p_cmp.add_argument("--out", dest="out_path", default=None,
                       help="also write every report as JSON here")

    p_pl = sub.add_parser(
        "place",
        help="place a scenario's object catalog with the batched engine",
    )
    p_pl.add_argument("--scenario", choices=sorted(SCENARIOS), default="www")
    p_pl.add_argument("--num-objects", type=int, default=None,
                      help="catalog size (scenario default when omitted)")
    p_pl.add_argument("--jobs", type=int, default=1,
                      help="worker processes (1 = in-process)")
    p_pl.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
                      help="objects per engine chunk")
    p_pl.add_argument("--fl-solver", choices=sorted(FL_SOLVERS),
                      default="local_search")
    p_pl.add_argument("--kernels", choices=KERNEL_MODES, default="auto",
                      help="hot-loop dispatch (auto | numpy | numba)")
    p_pl.add_argument("--shared-memory", default=True,
                      action=argparse.BooleanOptionalAction,
                      help="ship the instance to workers via shared memory "
                      "(--no-shared-memory forces the pickle path)")
    p_pl.add_argument("--shards", dest="num_shards", type=int, default=1,
                      help="solve hierarchically over this many shards "
                      "(1 = global solve)")
    p_pl.add_argument("--portals", dest="portals_per_shard", type=int,
                      default=4,
                      help="boundary portals per shard for the sharded solve")
    p_pl.add_argument("--partition", choices=PARTITION_METHODS, default="auto",
                      help="partition method for --shards > 1 "
                      "(auto | transit_stub | bfs | none)")
    p_pl.add_argument("--compare-loop", action="store_true",
                      help="also run the per-object loop and verify parity")
    p_pl.add_argument("--cost", action="store_true",
                      help="bill the placement under the mst policy")
    p_pl.add_argument("--cost-model", dest="cost_model",
                      choices=available_cost_models(), default="krw",
                      help="accounting model for --cost (default: krw, "
                      "the paper's bill)")
    p_pl.add_argument("--out", dest="out_path", default=None,
                      help="write a JSON summary here")

    p_bs = sub.add_parser(
        "backend-sweep",
        help="measure dense vs lazy distance backends at chosen sizes",
    )
    p_bs.add_argument("--sizes", nargs="+", type=int, default=[500, 1500, 4000],
                      help="target network sizes (nodes)")
    p_bs.add_argument("--topology", choices=("transit_stub", "power_law"),
                      default="transit_stub")
    p_bs.add_argument("--dense-limit", type=int, default=4000,
                      help="skip the dense backend above this many nodes")
    p_bs.add_argument("--seed", type=int, default=7)
    p_bs.add_argument("--out", dest="out_path", default=None,
                      help="also write a BENCH_*.json artifact here")

    p_dy = sub.add_parser(
        "dynamic",
        help="replay an epoch-structured workload: static vs replan vs online",
    )
    p_dy.add_argument("--scenario", choices=("drift", "flash"), default="drift",
                      help="popularity churn or a one-epoch flash crowd")
    p_dy.add_argument("--nodes", type=int, default=200,
                      help="target network size (transit-stub)")
    p_dy.add_argument("--num-objects", type=int, default=24)
    p_dy.add_argument("--epochs", type=int, default=4)
    p_dy.add_argument("--requests-per-epoch", type=int, default=1200)
    p_dy.add_argument("--drift", type=float, default=0.2,
                      help="fraction of objects swapping popularity per epoch")
    p_dy.add_argument("--write-fraction", type=float, default=0.1)
    p_dy.add_argument("--threshold", type=int, default=3,
                      help="online strategy's replication threshold")
    p_dy.add_argument("--fl-solver", choices=sorted(FL_SOLVERS),
                      default="local_search")
    p_dy.add_argument("--jobs", type=int, default=1,
                      help="engine worker processes per (re)placement")
    p_dy.add_argument("--incremental", action="store_true",
                      help="epoch-replan re-places only drifted objects "
                      "(replan_mode='incremental'); full catalog re-solve "
                      "when omitted")
    p_dy.add_argument("--tolerance", type=float, default=0.0,
                      help="normalized L1 demand-drift threshold below "
                      "which an object keeps its copies (0: exact, "
                      "bit-identical to the full re-solve)")
    p_dy.add_argument("--redraw", choices=("all", "changed"), default=None,
                      help="per-epoch demand resampling: 'all' redraws "
                      "every row, 'changed' only churned objects' rows "
                      "(default: 'changed' with --incremental, else 'all')")
    p_dy.add_argument("--seed", type=int, default=29)
    p_dy.add_argument("--no-loop", action="store_true",
                      help="skip the (slow) hop-by-hop replay baseline")
    p_dy.add_argument("--out", dest="out_path", default=None,
                      help="write the experiment table as JSON here")

    p_serve = sub.add_parser(
        "serve",
        help="long-lived placement daemon: live ingest, background "
        "replans, warm restarts",
    )
    serve_sub = p_serve.add_subparsers(dest="serve_command")
    serve_opts = argparse.ArgumentParser(add_help=False)
    serve_opts.add_argument("--config", default=None, metavar="FILE",
                            help="PlanConfig file (*.json or *.toml)")
    serve_opts.add_argument("--incremental", action="store_true",
                            help="background replans re-place only drifted "
                            "objects (replan_mode='incremental')")
    serve_opts.add_argument("--tolerance", type=float, default=None,
                            help="normalized L1 demand-drift threshold "
                            "below which an object keeps its copies "
                            "(0: every epoch replans exactly)")
    serve_opts.add_argument("--checkpoint", default=None, metavar="FILE",
                            help="warm-state *.npz: written on close/"
                            "SIGTERM (and resumed from, for 'run', when "
                            "it already exists)")
    serve_opts.add_argument("--checkpoint-every", dest="checkpoint_every",
                            type=int, default=None,
                            help="also checkpoint every N published epochs")

    ps_run = serve_sub.add_parser(
        "run", parents=[serve_opts],
        help="serve a saved instance: spool ingest + stdin/stdout "
        "request loop",
    )
    ps_run.add_argument("--instance", required=True, metavar="FILE",
                        help="a save_instance() artifact (*.npz or "
                        "*.json); its metric/prices define the network, "
                        "demand comes from the spool and stdin")
    ps_run.add_argument("--spool", default=None, metavar="DIR",
                        help="ingest every *.jsonl/*.json/*.npz request "
                        "batch in this directory (sorted) before the "
                        "command loop")
    ps_run.add_argument("--epoch-per-file", action="store_true",
                        help="seal an epoch after each spool file instead "
                        "of leaving the batches in one pending window")

    ps_rp = serve_sub.add_parser(
        "replay", parents=[serve_opts],
        help="drive a daemon from a generated dynamic workload; "
        "--compare checks tolerance-0 parity with the epoch replanner",
    )
    ps_rp.add_argument("--scenario", choices=("drift", "flash"),
                       default="drift")
    ps_rp.add_argument("--nodes", type=int, default=200,
                       help="target network size (transit-stub)")
    ps_rp.add_argument("--num-objects", type=int, default=24)
    ps_rp.add_argument("--epochs", type=int, default=4)
    ps_rp.add_argument("--requests-per-epoch", type=int, default=None,
                       help="per-epoch request budget (default 100 per "
                       "object)")
    ps_rp.add_argument("--drift", type=float, default=0.2,
                       help="fraction of objects swapping popularity per "
                       "epoch")
    ps_rp.add_argument("--write-fraction", type=float, default=0.1)
    ps_rp.add_argument("--backend", choices=("dense", "lazy"),
                       default="dense",
                       help="distance backend the daemon serves from")
    ps_rp.add_argument("--seed", type=int, default=29)
    ps_rp.add_argument("--compare", action="store_true",
                       help="replay the same workload through the "
                       "EpochReplanner and exit 1 if a tolerance-0 "
                       "daemon diverges from it")
    ps_rp.add_argument("--out", dest="out_path", default=None,
                       help="write the per-epoch records (or the parity "
                       "verdict) as JSON here")

    p_bench = sub.add_parser(
        "bench",
        help="experiment harness: cached resumable sweeps + BENCH gate",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command")
    bench_store = argparse.ArgumentParser(add_help=False)
    bench_store.add_argument("--store", default=".repro-bench",
                             metavar="DIR",
                             help="trial cache directory (results keyed by "
                             "canonical config hash)")

    pb_run = bench_sub.add_parser(
        "run", parents=[bench_store],
        help="run a sweep of trials; cached trials are loaded, not re-run",
    )
    pb_run.add_argument("--sweep", dest="sweep_path", default=None,
                        metavar="FILE",
                        help="SweepConfig file (*.json or *.toml)")
    pb_run.add_argument("--experiment", default=None,
                        help="run a single experiment instead of a sweep "
                        "file (E1..E16)")
    pb_run.add_argument("--params", default=None, metavar="JSON",
                        help="runner kwargs for --experiment as a JSON "
                        "object")
    pb_run.add_argument("--jobs", type=int, default=1,
                        help="trials run in parallel (1 = in-process)")
    pb_run.add_argument("--limit", type=int, default=None,
                        help="execute at most this many new trials "
                        "(cached loads are free); the rest stay pending")
    pb_run.add_argument("--timestamp", default=None,
                        help="record this string as the trials' "
                        "generated-at stamp (never read from the clock)")
    pb_run.add_argument("--show", action="store_true",
                        help="print every completed trial's result table")

    pb_gate = bench_sub.add_parser(
        "gate", parents=[bench_store],
        help="validate BENCH_*.json artifacts and smoke-run each gated "
        "experiment; exit 1 on regression, 3 on missing artifact",
    )
    pb_gate.add_argument("--tier", choices=("smoke", "artifact"),
                         default="smoke",
                         help="'artifact' validates committed artifacts "
                         "only; 'smoke' also re-runs each gate's budgeted "
                         "smoke trial")
    pb_gate.add_argument("--artifact-dir", default=None, metavar="DIR",
                         help="where the BENCH_*.json artifacts live "
                         "(default: the committed benchmarks/ directory)")
    pb_gate.add_argument("--only", nargs="+", default=None,
                         metavar="EXP",
                         help="gate only these experiments (e.g. E14 E16)")
    pb_gate.add_argument("--jobs", type=int, default=1,
                         help="smoke trials run in parallel")
    pb_gate.add_argument("--timestamp", default=None,
                         help="generated-at stamp for fresh smoke trials")
    pb_gate.add_argument("--report", dest="report_path", default=None,
                         metavar="FILE",
                         help="also write the findings report here (the "
                         "CI failure artifact)")

    bench_sub.add_parser(
        "list", parents=[bench_store],
        help="list experiments, gate specs and the trial cache",
    )

    sub.add_parser("list", help="list experiments, scenarios and strategies")

    args = parser.parse_args(argv)
    if args.command == "experiment":
        return _run_experiments(args.names, out=out)
    if args.command == "scenario":
        return _run_scenario(args.name, out=out, num_objects=args.num_objects)
    if args.command == "plan":
        return _run_plan(args, out=out)
    if args.command == "compare":
        return _run_compare(args, out=out)
    if args.command == "place":
        return _run_place(args, out=out)
    if args.command == "backend-sweep":
        return _run_backend_sweep(args, out=out)
    if args.command == "serve":
        return _run_serve(args, out=out)
    if args.command == "dynamic":
        return _run_dynamic(args, out=out)
    if args.command == "bench":
        return _run_bench(args, out=out)
    if args.command == "list":
        print("experiments:      ", ", ".join(EXPERIMENTS), file=out)
        print("scenarios:        ", ", ".join(SCENARIOS), file=out)
        print("dynamic scenarios:", ", ".join(DYNAMIC_SCENARIOS), file=out)
        print("strategies:       ", ", ".join(available_strategies()), file=out)
        print("  krw-sharded knobs: partition="
              f"{'|'.join(PARTITION_METHODS)}, num_shards (--shards), "
              "portals_per_shard (--portals); num_shards=1 equals krw",
              file=out)
        print("cost models:      ", ", ".join(available_cost_models()),
              file=out)
        print("  accounting seam (--cost-model): krw = the paper's bill "
              "(default), admission = per-timeslot capacity, "
              "broadcast-write = one propagation per epoch", file=out)
        return 0
    parser.print_help(out)
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
