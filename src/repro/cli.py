"""Command-line interface: run experiments and scenarios from the shell.

Usage::

    python -m repro experiment E1 [E3 ...]   # regenerate experiment tables
    python -m repro experiment all
    python -m repro scenario www             # run a named scenario bake-off
    python -m repro backend-sweep --sizes 1000 4000 10000 \\
        --out BENCH_backend_sweep.json       # dense-vs-lazy scaling sweep
    python -m repro list                     # what is available

Experiments are the E1--E13 validations mapped to the paper in
docs/EXPERIMENTS.md; scenarios place a full object catalogue with every
strategy and print the bill comparison; ``backend-sweep`` measures the
dense vs lazy distance backends at chosen network sizes and can persist a
``BENCH_*.json`` artifact.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from . import analysis
from .baselines import best_single_node, full_replication, write_blind_placement
from .core.approx import approximate_placement
from .core.costs import placement_cost
from .core.placement import Placement
from .workloads import (
    distributed_file_system,
    tree_network,
    virtual_shared_memory,
    www_content_provider,
)

__all__ = ["main", "EXPERIMENTS", "SCENARIOS"]

EXPERIMENTS: dict[str, Callable[[], "analysis.ExperimentResult"]] = {
    "E1": analysis.run_e1_approx_ratio,
    "E2": analysis.run_e2_tree_dp,
    "E3": analysis.run_e3_restricted_gap,
    "E4": analysis.run_e4_proper_invariants,
    "E5": analysis.run_e5_phase_ablation,
    "E6": analysis.run_e6_baselines,
    "E7": analysis.run_e7_storage_sweep,
    "E8": analysis.run_e8_facility_choice,
    "E9": analysis.run_e9_load_model,
    "E10": analysis.run_e10_scalability,
    "E10B": analysis.run_e10_backend_sweep,
    "E11": analysis.run_e11_simulation_agreement,
    "E12": analysis.run_e12_online_vs_static,
    "E13": analysis.run_e13_capacity_price,
}

SCENARIOS = {
    "www": www_content_provider,
    "dfs": distributed_file_system,
    "vsm": virtual_shared_memory,
    "tree": tree_network,
}


def _run_experiments(names: Sequence[str], out=sys.stdout) -> int:
    if any(n.lower() == "all" for n in names):
        names = list(EXPERIMENTS)
    for name in names:
        key = name.upper()
        if key not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from "
                  f"{', '.join(EXPERIMENTS)} or 'all'", file=sys.stderr)
            return 2
        result = EXPERIMENTS[key]()
        print(result.render(), file=out)
        print(file=out)
    return 0


def _run_scenario(name: str, out=sys.stdout) -> int:
    if name not in SCENARIOS:
        print(f"unknown scenario {name!r}; choose from {', '.join(SCENARIOS)}",
              file=sys.stderr)
        return 2
    sc = SCENARIOS[name]()
    inst = sc.instance
    print(f"scenario {sc.name}: {inst.num_nodes} nodes, "
          f"{inst.num_objects} objects", file=out)

    strategies = {
        "krw-approximation": approximate_placement(inst),
        "single-median": Placement(
            tuple(best_single_node(inst, o) for o in range(inst.num_objects))
        ),
        "full-replication": Placement(
            tuple(full_replication(inst, o) for o in range(inst.num_objects))
        ),
        "write-blind-fl": Placement(
            tuple(write_blind_placement(inst, o) for o in range(inst.num_objects))
        ),
    }
    rows = []
    for label, placement in strategies.items():
        cost = placement_cost(inst, placement, policy="mst")
        rows.append([label, placement.replication_degree(), cost.storage,
                     cost.read, cost.update, cost.total])
    print(
        analysis.format_table(
            ("strategy", "mean copies", "storage", "read", "update", "total"),
            rows,
        ),
        file=out,
    )
    return 0


def _run_backend_sweep(args, out=sys.stdout) -> int:
    try:
        result = analysis.run_e10_backend_sweep(
            sizes=tuple(args.sizes),
            topology=args.topology,
            dense_limit=args.dense_limit,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"backend-sweep: {exc}", file=sys.stderr)
        return 2
    print(result.render(), file=out)
    if args.out_path:
        result.save_json(args.out_path)
        print(f"wrote {args.out_path}", file=out)
    return 0


def main(argv: Sequence[str] | None = None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Approximation Algorithms for Data "
        "Management in Networks' (SPAA 2001)",
    )
    sub = parser.add_subparsers(dest="command")

    p_exp = sub.add_parser("experiment", help="run evaluation experiments")
    p_exp.add_argument("names", nargs="+", help="E1..E13 or 'all'")

    p_sc = sub.add_parser("scenario", help="run a named scenario bake-off")
    p_sc.add_argument("name", choices=sorted(SCENARIOS))

    p_bs = sub.add_parser(
        "backend-sweep",
        help="measure dense vs lazy distance backends at chosen sizes",
    )
    p_bs.add_argument("--sizes", nargs="+", type=int, default=[500, 1500, 4000],
                      help="target network sizes (nodes)")
    p_bs.add_argument("--topology", choices=("transit_stub", "power_law"),
                      default="transit_stub")
    p_bs.add_argument("--dense-limit", type=int, default=4000,
                      help="skip the dense backend above this many nodes")
    p_bs.add_argument("--seed", type=int, default=7)
    p_bs.add_argument("--out", dest="out_path", default=None,
                      help="also write a BENCH_*.json artifact here")

    sub.add_parser("list", help="list experiments and scenarios")

    args = parser.parse_args(argv)
    if args.command == "experiment":
        return _run_experiments(args.names, out=out)
    if args.command == "scenario":
        return _run_scenario(args.name, out=out)
    if args.command == "backend-sweep":
        return _run_backend_sweep(args, out=out)
    if args.command == "list":
        print("experiments:", ", ".join(EXPERIMENTS), file=out)
        print("scenarios:  ", ", ".join(SCENARIOS), file=out)
        return 0
    parser.print_help(out)
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
