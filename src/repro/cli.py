"""Command-line interface: run experiments and scenarios from the shell.

Usage::

    python -m repro experiment E1 [E3 ...]   # regenerate experiment tables
    python -m repro experiment all
    python -m repro scenario www             # run a named scenario bake-off
    python -m repro scenario www --num-objects 5000
    python -m repro plan --scenario www --config cfg.json \\
        --save www.npz                       # one strategy -> artifact
    python -m repro plan --load www.npz      # reload the artifact
    python -m repro compare --scenario dfs --strategies krw online
    python -m repro place --scenario www --num-objects 100000 \\
        --jobs 4 --chunk-size 512            # batched catalog placement
    python -m repro place --scenario www --shards 8 --portals 4 \\
        --jobs 4                             # hierarchical sharded solve
    python -m repro plan --scenario www --strategy krw-sharded --shards 4
    python -m repro backend-sweep --sizes 1000 4000 10000 \\
        --out BENCH_backend_sweep.json       # dense-vs-lazy scaling sweep
    python -m repro dynamic --scenario drift --epochs 5 \\
        --num-objects 60                     # dynamic-layer comparison
    python -m repro dynamic --incremental --tolerance 0.0 \\
        --epochs 5                           # re-place only drifted objects
    python -m repro bench run --sweep sweep.json --store .repro-bench \\
        --jobs 2                             # cached, resumable trial sweep
    python -m repro bench gate --tier smoke  # BENCH_*.json regression gate
    python -m repro bench list               # experiments, gates, cache
    python -m repro list                     # what is available

Experiments are the E1--E16 validations mapped to the paper in
docs/EXPERIMENTS.md; scenarios place a full object catalogue with the
registered strategies and print the bill comparison; ``plan`` runs one
registered strategy under a (optionally file-loaded)
:class:`~repro.config.PlanConfig` and can persist/reload the resulting
:class:`~repro.api.PlanReport`; ``compare`` runs many strategies on one
scenario; ``place`` runs the batched
:class:`~repro.engine.PlacementEngine` over a scenario's catalog (with
optional per-object-loop parity check and JSON summary);
``backend-sweep`` measures the dense vs lazy distance backends at chosen
network sizes and can persist a ``BENCH_*.json`` artifact; ``dynamic``
replays an epoch-structured workload and compares clairvoyant-static,
epoch-replanned and online-counting strategies (E15);
``--incremental/--tolerance`` switch the replanner to incremental
re-placement of only the drifted objects (E16); ``bench`` is the
declarative experiment harness (:mod:`repro.bench`): ``run`` executes a
sweep of trials with results cached on disk by canonical config hash
(interrupted sweeps resume), ``gate`` validates the committed
``benchmarks/BENCH_*.json`` artifacts and re-runs a budgeted smoke tier
of each gated experiment, exiting ``1`` on regression and ``3`` on a
missing artifact, and ``list`` shows experiments, gates and the cache.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Sequence

from . import analysis
from .api import PlanReport, Planner, compare_table
from .bench import EXPERIMENT_RUNNERS
from .config import KERNEL_MODES, PARTITION_METHODS, PlanConfig
from .core.approx import approximate_placement
from .core.costs import placement_cost
from .engine import DEFAULT_CHUNK_SIZE, PlacementEngine
from .facility import FL_SOLVERS
from .registry import available_strategies
from .workloads import DYNAMIC_SCENARIOS, SCENARIO_BUILDERS

__all__ = ["main", "EXPERIMENTS", "SCENARIOS"]

#: The CLI's experiment registry rides the bench harness's -- one table
#: of E-series runners for ``experiment``, ``bench run`` and the gate.
EXPERIMENTS: dict[str, Callable[[], "analysis.ExperimentResult"]] = dict(
    EXPERIMENT_RUNNERS
)

# the CLI surface is the workloads registry; the alias is the public name
# this module has always exported
SCENARIOS = SCENARIO_BUILDERS

#: The scenario bake-off subset: the static strategies whose bills are
#: comparable at a glance (the slow true-objective heuristics and the
#: order-sensitive online strategy run via ``compare --strategies``).
BAKEOFF_STRATEGIES = ("krw", "single-median", "full-replication", "write-blind")


def _run_experiments(names: Sequence[str], out=sys.stdout) -> int:
    if any(n.lower() == "all" for n in names):
        names = list(EXPERIMENTS)
    for name in names:
        key = name.upper()
        if key not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from "
                  f"{', '.join(EXPERIMENTS)} or 'all'", file=sys.stderr)
            return 2
        result = EXPERIMENTS[key]()
        print(result.render(), file=out)
        print(file=out)
    return 0


def _scenario_kwargs(args) -> dict:
    kwargs = {}
    if getattr(args, "num_objects", None) is not None:
        kwargs["num_objects"] = args.num_objects
    return kwargs


def _run_scenario(name: str, out=sys.stdout, *, num_objects: int | None = None) -> int:
    if name not in SCENARIOS:
        print(f"unknown scenario {name!r}; choose from {', '.join(SCENARIOS)}",
              file=sys.stderr)
        return 2
    kwargs = {} if num_objects is None else {"num_objects": num_objects}
    sc = SCENARIOS[name](**kwargs)
    inst = sc.instance
    print(f"scenario {sc.name}: {inst.num_nodes} nodes, "
          f"{inst.num_objects} objects", file=out)
    reports = Planner().compare(sc, BAKEOFF_STRATEGIES)
    print(compare_table(reports), file=out)
    return 0


def _load_config(args) -> PlanConfig | None:
    """The run's PlanConfig: file base, CLI overrides on top."""
    config = PlanConfig() if args.config is None else PlanConfig.from_file(args.config)
    overrides = {}
    for knob in ("jobs", "fl_solver", "seed", "kernels", "cache_rows",
                 "shared_memory", "num_shards", "portals_per_shard",
                 "partition"):
        value = getattr(args, knob, None)
        if value is not None:
            overrides[knob] = value
    return config.replace(**overrides) if overrides else config


def _build_scenario(args):
    sc = SCENARIOS[args.scenario](**_scenario_kwargs(args))
    return sc


def _run_plan(args, out=sys.stdout) -> int:
    if args.load_path:
        try:
            report = PlanReport.load(args.load_path)
        except (ValueError, OSError, KeyError) as exc:
            print(f"plan: cannot load {args.load_path}: {exc}", file=sys.stderr)
            return 2
        print(f"loaded {args.load_path}", file=out)
        print(report.render(), file=out)
        return 0
    try:
        config = _load_config(args)
    except (ValueError, TypeError, OSError) as exc:
        print(f"plan: bad config: {exc}", file=sys.stderr)
        return 2
    sc = _build_scenario(args)
    inst = sc.instance
    print(f"scenario {sc.name}: {inst.num_nodes} nodes, "
          f"{inst.num_objects} objects", file=out)
    report = Planner(config).plan(sc, args.strategy)
    print(report.render(), file=out)
    _print_extras(report, out)
    if args.save_path:
        report.save(args.save_path)
        print(f"wrote {args.save_path}", file=out)
    return 0


def _run_compare(args, out=sys.stdout) -> int:
    try:
        config = _load_config(args)
    except (ValueError, TypeError, OSError) as exc:
        print(f"compare: bad config: {exc}", file=sys.stderr)
        return 2
    sc = _build_scenario(args)
    inst = sc.instance
    print(f"scenario {sc.name}: {inst.num_nodes} nodes, "
          f"{inst.num_objects} objects", file=out)
    names = args.strategies or list(available_strategies())
    reports = Planner(config).compare(sc, names)
    print(compare_table(reports), file=out)
    if args.out_path:
        payload = {"scenario": sc.name, "reports": [r.to_dict() for r in reports]}
        with open(args.out_path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out_path}", file=out)
    return 0


def _print_extras(report, out) -> None:
    """Run-provenance lines under a plan table (kernel dispatch, worker
    transport, lazy-backend row-cache hit rate)."""
    extras = report.extras or {}
    kernels = extras.get("kernels")
    if kernels:
        print(f"kernels: mode={kernels['mode']} "
              f"(numba {'available' if kernels['numba_available'] else 'absent'})",
              file=out)
    shm = extras.get("shared_memory")
    if shm and shm.get("used") is not None:
        print(f"shared memory: requested={shm['requested']} used={shm['used']}",
              file=out)
    cache = extras.get("row_cache")
    if cache:
        rate = cache["hit_rate"]
        rate_s = "n/a" if rate is None else f"{rate:.1%}"
        print(f"row cache: {cache['hits']} hits / {cache['misses']} misses "
              f"(hit rate {rate_s}, cache_rows={cache['cache_rows']})", file=out)
    sharded = extras.get("sharded")
    if sharded:
        if sharded.get("degenerate"):
            print(f"sharded: degenerate (num_shards=1, "
                  f"partition={sharded['partition']}) -- global solve",
                  file=out)
        else:
            sizes = sharded["shard_sizes"]
            print(f"sharded: {sharded['num_shards']} shards "
                  f"(sizes {min(sizes)}..{max(sizes)}), "
                  f"{sharded['num_portals']} portals, "
                  f"{sharded['spanning_objects']} spanning objects, "
                  f"stitch dropped {sharded['stitch_dropped']} copies",
                  file=out)


def _run_place(args, out=sys.stdout) -> int:
    if args.jobs < 1 or args.chunk_size < 1:
        print("place: --jobs and --chunk-size must be positive", file=sys.stderr)
        return 2
    if args.num_shards < 1 or args.portals_per_shard < 1:
        print("place: --shards and --portals must be positive", file=sys.stderr)
        return 2
    if args.compare_loop and args.num_shards > 1 and args.partition != "none":
        print("place: --compare-loop checks global-solve parity; "
              "drop it or use --shards 1", file=sys.stderr)
        return 2
    sc = SCENARIOS[args.scenario](**_scenario_kwargs(args))
    inst = sc.instance
    print(f"scenario {sc.name}: {inst.num_nodes} nodes, "
          f"{inst.num_objects} objects", file=out)

    engine = PlacementEngine(
        inst, fl_solver=args.fl_solver, chunk_size=args.chunk_size,
        jobs=args.jobs, shared_memory=args.shared_memory,
        kernels=args.kernels,
    )
    sharded = args.num_shards > 1 and args.partition != "none"
    shard_info = None
    t0 = time.perf_counter()
    if sharded:
        from .graphs.partition import partition_instance

        part = partition_instance(
            inst, num_shards=args.num_shards,
            portals_per_shard=args.portals_per_shard,
            method=args.partition,
        )
        placement, shard_info = engine.place_sharded(part)
    else:
        placement = engine.place()
    elapsed = time.perf_counter() - t0
    summary = {
        "scenario": sc.name,
        "nodes": inst.num_nodes,
        "objects": inst.num_objects,
        "jobs": args.jobs,
        "chunk_size": args.chunk_size,
        "fl_solver": args.fl_solver,
        "kernels": args.kernels,
        "shared_memory_used": engine.used_shared_memory,
        "time_s": elapsed,
        "objects_per_s": inst.num_objects / elapsed,
        "total_copies": placement.total_copies(),
        "mean_copies": placement.replication_degree(),
    }
    print(f"engine: {elapsed:.2f}s "
          f"({summary['objects_per_s']:.0f} objects/s, jobs={args.jobs}), "
          f"{summary['total_copies']} copies "
          f"(mean {summary['mean_copies']:.2f}/object)", file=out)
    if shard_info is not None:
        summary["sharded"] = {
            k: v for k, v in shard_info.items() if k != "row_cache"
        }
        print(f"sharded: {shard_info['num_shards']} shards, "
              f"{shard_info['num_portals']} portals, "
              f"{shard_info['spanning_objects']} spanning objects, "
              f"stitch dropped {shard_info['stitch_dropped']} copies",
              file=out)

    if args.compare_loop:
        t0 = time.perf_counter()
        loop = approximate_placement(inst, fl_solver=args.fl_solver)
        loop_s = time.perf_counter() - t0
        summary["loop_time_s"] = loop_s
        summary["speedup_vs_loop"] = loop_s / elapsed
        summary["matches_loop"] = placement.copy_sets == loop.copy_sets
        print(f"per-object loop: {loop_s:.2f}s -> engine speedup "
              f"{summary['speedup_vs_loop']:.1f}x, identical copy sets: "
              f"{summary['matches_loop']}", file=out)
        if not summary["matches_loop"]:
            print("place: engine/loop copy sets differ", file=sys.stderr)
            return 1
    if args.cost:
        bill = placement_cost(inst, placement, policy="mst")
        summary["cost"] = {
            "storage": bill.storage, "read": bill.read,
            "update": bill.update, "total": bill.total,
        }
        print(f"bill (mst policy): storage {bill.storage:.1f} + read "
              f"{bill.read:.1f} + update {bill.update:.1f} = "
              f"{bill.total:.1f}", file=out)
    if args.out_path:
        with open(args.out_path, "w") as fh:
            json.dump(summary, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out_path}", file=out)
    return 0


def _run_dynamic(args, out=sys.stdout) -> int:
    if args.epochs < 1 or args.requests_per_epoch < 0:
        print("dynamic: --epochs must be >= 1 and --requests-per-epoch >= 0",
              file=sys.stderr)
        return 2
    if args.tolerance < 0:
        print("dynamic: --tolerance must be non-negative", file=sys.stderr)
        return 2
    try:
        result = analysis.run_e15_dynamic_replay(
            n=args.nodes,
            num_objects=args.num_objects,
            epochs=args.epochs,
            requests_per_epoch=args.requests_per_epoch,
            scenario=args.scenario,
            drift=args.drift,
            write_fraction=args.write_fraction,
            threshold=args.threshold,
            seed=args.seed,
            fl_solver=args.fl_solver,
            jobs=args.jobs,
            compare_loop=not args.no_loop,
            replan_mode="incremental" if args.incremental else "full",
            replan_tolerance=args.tolerance,
            redraw=args.redraw,
        )
    except ValueError as exc:
        print(f"dynamic: {exc}", file=sys.stderr)
        return 2
    print(result.render(), file=out)
    if args.out_path:
        result.save_json(args.out_path)
        print(f"wrote {args.out_path}", file=out)
    return 0


def _run_backend_sweep(args, out=sys.stdout) -> int:
    try:
        result = analysis.run_e10_backend_sweep(
            sizes=tuple(args.sizes),
            topology=args.topology,
            dense_limit=args.dense_limit,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"backend-sweep: {exc}", file=sys.stderr)
        return 2
    print(result.render(), file=out)
    if args.out_path:
        result.save_json(args.out_path)
        print(f"wrote {args.out_path}", file=out)
    return 0


def _bench_sweep_from_args(args):
    """The declared trial set of ``bench run`` (sweep file or one-off)."""
    from .bench import SweepConfig, TrialConfig

    if args.sweep_path:
        return SweepConfig.from_file(args.sweep_path).trials()
    if args.experiment:
        params = json.loads(args.params) if args.params else {}
        if not isinstance(params, dict):
            raise TypeError("--params must hold a JSON object")
        return [TrialConfig.make(args.experiment, **params)]
    raise TypeError("bench run needs --sweep FILE or --experiment ID")


def _run_bench_run(args, out=sys.stdout) -> int:
    from .bench import EXPERIMENT_RUNNERS, TrialStore, run_sweep

    try:
        trials = _bench_sweep_from_args(args)
    except (TypeError, ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"bench run: bad sweep: {exc}", file=sys.stderr)
        return 2
    unknown = sorted({t.experiment for t in trials} - set(EXPERIMENT_RUNNERS))
    if unknown:
        print(f"bench run: unknown experiment(s) {unknown}; choose from "
              f"{', '.join(EXPERIMENT_RUNNERS)}", file=sys.stderr)
        return 2
    store = TrialStore(args.store)
    outcomes = run_sweep(
        trials, store, jobs=args.jobs, limit=args.limit,
        generated_at=args.timestamp,
        progress=lambda msg: print(msg, file=out),
    )
    ran = sum(1 for o in outcomes if o.status == "ran")
    cached = sum(1 for o in outcomes if o.status == "cached")
    pending = sum(1 for o in outcomes if o.status == "pending")
    print(f"bench run: {len(outcomes)} trial(s): {ran} ran, {cached} cached, "
          f"{pending} pending (store: {store.root})", file=out)
    if args.show:
        for outcome in outcomes:
            if outcome.record is not None:
                print(outcome.record.to_experiment_result().render(), file=out)
                print(file=out)
    return 0


def _run_bench_gate(args, out=sys.stdout) -> int:
    from .bench import TrialStore, run_gate

    try:
        report = run_gate(
            tier=args.tier,
            artifact_dir=args.artifact_dir,
            store=TrialStore(args.store),
            only=args.only,
            jobs=args.jobs,
            generated_at=args.timestamp,
            progress=lambda msg: print(msg, file=out),
        )
    except ValueError as exc:
        print(f"bench gate: {exc}", file=sys.stderr)
        return 2
    text = report.render()
    print(text, file=out)
    if args.report_path:
        with open(args.report_path, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.report_path}", file=out)
    return report.exit_code


def _run_bench_list(args, out=sys.stdout) -> int:
    from .bench import EXPERIMENT_RUNNERS, GATES, TrialStore

    print("experiments:", ", ".join(EXPERIMENT_RUNNERS), file=out)
    print("gated:", file=out)
    for spec in GATES.values():
        print(f"  {spec.exp_id:5s} {spec.artifact}  "
              f"({len(spec.checks)} checks)", file=out)
    store = TrialStore(args.store)
    records = store.records()
    print(f"trial store {store.root}: {len(records)} cached trial(s)",
          file=out)
    for record in records:
        print(f"  {record.config.label()}  {record.elapsed_s:.2f}s",
              file=out)
    return 0


def _run_bench(args, out=sys.stdout) -> int:
    if args.bench_command == "run":
        return _run_bench_run(args, out=out)
    if args.bench_command == "gate":
        return _run_bench_gate(args, out=out)
    if args.bench_command == "list":
        return _run_bench_list(args, out=out)
    print("bench: choose a subcommand: run, gate or list", file=sys.stderr)
    return 2


def main(argv: Sequence[str] | None = None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Approximation Algorithms for Data "
        "Management in Networks' (SPAA 2001)",
    )
    sub = parser.add_subparsers(dest="command")

    p_exp = sub.add_parser("experiment", help="run evaluation experiments")
    p_exp.add_argument("names", nargs="+", help="E1..E15 or 'all'")

    p_sc = sub.add_parser("scenario", help="run a named scenario bake-off")
    p_sc.add_argument("name", choices=sorted(SCENARIOS))
    p_sc.add_argument("--num-objects", type=int, default=None,
                      help="catalog size (scenario default when omitted); "
                      "large catalogs use the Zipf-weighted columnar split")

    # the problem/config options plan and compare share (the knobs
    # _load_config reads must stay identical across the two commands)
    planner_opts = argparse.ArgumentParser(add_help=False)
    planner_opts.add_argument("--scenario", choices=sorted(SCENARIOS),
                              default="www")
    planner_opts.add_argument("--num-objects", type=int, default=None,
                              help="catalog size (scenario default when "
                              "omitted)")
    planner_opts.add_argument("--config", default=None, metavar="FILE",
                              help="PlanConfig file (*.json or *.toml)")
    planner_opts.add_argument("--jobs", type=int, default=None,
                              help="override the config's worker count")
    planner_opts.add_argument("--fl-solver", choices=sorted(FL_SOLVERS),
                              default=None,
                              help="override the config's phase-1 solver")
    planner_opts.add_argument("--seed", type=int, default=None,
                              help="override the config's event-order seed")
    planner_opts.add_argument("--kernels", choices=KERNEL_MODES, default=None,
                              help="override the config's hot-loop dispatch "
                              "(auto | numpy | numba)")
    planner_opts.add_argument("--shared-memory", default=None,
                              action=argparse.BooleanOptionalAction,
                              help="override the config's zero-copy worker "
                              "transport (--no-shared-memory forces the "
                              "pickle path)")
    planner_opts.add_argument("--cache-rows", dest="cache_rows", type=int,
                              default=None,
                              help="override the config's lazy-backend row "
                              "cache capacity")
    planner_opts.add_argument("--shards", dest="num_shards", type=int,
                              default=None,
                              help="override the config's shard count "
                              "(krw-sharded: 1 = global solve)")
    planner_opts.add_argument("--portals", dest="portals_per_shard", type=int,
                              default=None,
                              help="override the config's boundary portals "
                              "per shard")
    planner_opts.add_argument("--partition", choices=PARTITION_METHODS,
                              default=None,
                              help="override the config's partition method "
                              "(auto | transit_stub | bfs | none)")

    p_plan = sub.add_parser(
        "plan",
        parents=[planner_opts],
        help="run one registered strategy under a PlanConfig; save/load "
        "the resulting PlanReport artifact",
    )
    p_plan.add_argument("--strategy", choices=available_strategies(),
                        default="krw")
    p_plan.add_argument("--save", dest="save_path", default=None,
                        help="write the PlanReport here (*.npz or *.json)")
    p_plan.add_argument("--load", dest="load_path", default=None,
                        help="reload and print a saved PlanReport instead "
                        "of planning")

    p_cmp = sub.add_parser(
        "compare",
        parents=[planner_opts],
        help="run several registered strategies on one scenario",
    )
    p_cmp.add_argument("--strategies", nargs="+", default=None,
                       choices=available_strategies(),
                       help="strategy names (default: every registered one)")
    p_cmp.add_argument("--out", dest="out_path", default=None,
                       help="also write every report as JSON here")

    p_pl = sub.add_parser(
        "place",
        help="place a scenario's object catalog with the batched engine",
    )
    p_pl.add_argument("--scenario", choices=sorted(SCENARIOS), default="www")
    p_pl.add_argument("--num-objects", type=int, default=None,
                      help="catalog size (scenario default when omitted)")
    p_pl.add_argument("--jobs", type=int, default=1,
                      help="worker processes (1 = in-process)")
    p_pl.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
                      help="objects per engine chunk")
    p_pl.add_argument("--fl-solver", choices=sorted(FL_SOLVERS),
                      default="local_search")
    p_pl.add_argument("--kernels", choices=KERNEL_MODES, default="auto",
                      help="hot-loop dispatch (auto | numpy | numba)")
    p_pl.add_argument("--shared-memory", default=True,
                      action=argparse.BooleanOptionalAction,
                      help="ship the instance to workers via shared memory "
                      "(--no-shared-memory forces the pickle path)")
    p_pl.add_argument("--shards", dest="num_shards", type=int, default=1,
                      help="solve hierarchically over this many shards "
                      "(1 = global solve)")
    p_pl.add_argument("--portals", dest="portals_per_shard", type=int,
                      default=4,
                      help="boundary portals per shard for the sharded solve")
    p_pl.add_argument("--partition", choices=PARTITION_METHODS, default="auto",
                      help="partition method for --shards > 1 "
                      "(auto | transit_stub | bfs | none)")
    p_pl.add_argument("--compare-loop", action="store_true",
                      help="also run the per-object loop and verify parity")
    p_pl.add_argument("--cost", action="store_true",
                      help="bill the placement under the mst policy")
    p_pl.add_argument("--out", dest="out_path", default=None,
                      help="write a JSON summary here")

    p_bs = sub.add_parser(
        "backend-sweep",
        help="measure dense vs lazy distance backends at chosen sizes",
    )
    p_bs.add_argument("--sizes", nargs="+", type=int, default=[500, 1500, 4000],
                      help="target network sizes (nodes)")
    p_bs.add_argument("--topology", choices=("transit_stub", "power_law"),
                      default="transit_stub")
    p_bs.add_argument("--dense-limit", type=int, default=4000,
                      help="skip the dense backend above this many nodes")
    p_bs.add_argument("--seed", type=int, default=7)
    p_bs.add_argument("--out", dest="out_path", default=None,
                      help="also write a BENCH_*.json artifact here")

    p_dy = sub.add_parser(
        "dynamic",
        help="replay an epoch-structured workload: static vs replan vs online",
    )
    p_dy.add_argument("--scenario", choices=("drift", "flash"), default="drift",
                      help="popularity churn or a one-epoch flash crowd")
    p_dy.add_argument("--nodes", type=int, default=200,
                      help="target network size (transit-stub)")
    p_dy.add_argument("--num-objects", type=int, default=24)
    p_dy.add_argument("--epochs", type=int, default=4)
    p_dy.add_argument("--requests-per-epoch", type=int, default=1200)
    p_dy.add_argument("--drift", type=float, default=0.2,
                      help="fraction of objects swapping popularity per epoch")
    p_dy.add_argument("--write-fraction", type=float, default=0.1)
    p_dy.add_argument("--threshold", type=int, default=3,
                      help="online strategy's replication threshold")
    p_dy.add_argument("--fl-solver", choices=sorted(FL_SOLVERS),
                      default="local_search")
    p_dy.add_argument("--jobs", type=int, default=1,
                      help="engine worker processes per (re)placement")
    p_dy.add_argument("--incremental", action="store_true",
                      help="epoch-replan re-places only drifted objects "
                      "(replan_mode='incremental'); full catalog re-solve "
                      "when omitted")
    p_dy.add_argument("--tolerance", type=float, default=0.0,
                      help="normalized L1 demand-drift threshold below "
                      "which an object keeps its copies (0: exact, "
                      "bit-identical to the full re-solve)")
    p_dy.add_argument("--redraw", choices=("all", "changed"), default=None,
                      help="per-epoch demand resampling: 'all' redraws "
                      "every row, 'changed' only churned objects' rows "
                      "(default: 'changed' with --incremental, else 'all')")
    p_dy.add_argument("--seed", type=int, default=29)
    p_dy.add_argument("--no-loop", action="store_true",
                      help="skip the (slow) hop-by-hop replay baseline")
    p_dy.add_argument("--out", dest="out_path", default=None,
                      help="write the experiment table as JSON here")

    p_bench = sub.add_parser(
        "bench",
        help="experiment harness: cached resumable sweeps + BENCH gate",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command")
    bench_store = argparse.ArgumentParser(add_help=False)
    bench_store.add_argument("--store", default=".repro-bench",
                             metavar="DIR",
                             help="trial cache directory (results keyed by "
                             "canonical config hash)")

    pb_run = bench_sub.add_parser(
        "run", parents=[bench_store],
        help="run a sweep of trials; cached trials are loaded, not re-run",
    )
    pb_run.add_argument("--sweep", dest="sweep_path", default=None,
                        metavar="FILE",
                        help="SweepConfig file (*.json or *.toml)")
    pb_run.add_argument("--experiment", default=None,
                        help="run a single experiment instead of a sweep "
                        "file (E1..E16)")
    pb_run.add_argument("--params", default=None, metavar="JSON",
                        help="runner kwargs for --experiment as a JSON "
                        "object")
    pb_run.add_argument("--jobs", type=int, default=1,
                        help="trials run in parallel (1 = in-process)")
    pb_run.add_argument("--limit", type=int, default=None,
                        help="execute at most this many new trials "
                        "(cached loads are free); the rest stay pending")
    pb_run.add_argument("--timestamp", default=None,
                        help="record this string as the trials' "
                        "generated-at stamp (never read from the clock)")
    pb_run.add_argument("--show", action="store_true",
                        help="print every completed trial's result table")

    pb_gate = bench_sub.add_parser(
        "gate", parents=[bench_store],
        help="validate BENCH_*.json artifacts and smoke-run each gated "
        "experiment; exit 1 on regression, 3 on missing artifact",
    )
    pb_gate.add_argument("--tier", choices=("smoke", "artifact"),
                         default="smoke",
                         help="'artifact' validates committed artifacts "
                         "only; 'smoke' also re-runs each gate's budgeted "
                         "smoke trial")
    pb_gate.add_argument("--artifact-dir", default=None, metavar="DIR",
                         help="where the BENCH_*.json artifacts live "
                         "(default: the committed benchmarks/ directory)")
    pb_gate.add_argument("--only", nargs="+", default=None,
                         metavar="EXP",
                         help="gate only these experiments (e.g. E14 E16)")
    pb_gate.add_argument("--jobs", type=int, default=1,
                         help="smoke trials run in parallel")
    pb_gate.add_argument("--timestamp", default=None,
                         help="generated-at stamp for fresh smoke trials")
    pb_gate.add_argument("--report", dest="report_path", default=None,
                         metavar="FILE",
                         help="also write the findings report here (the "
                         "CI failure artifact)")

    bench_sub.add_parser(
        "list", parents=[bench_store],
        help="list experiments, gate specs and the trial cache",
    )

    sub.add_parser("list", help="list experiments, scenarios and strategies")

    args = parser.parse_args(argv)
    if args.command == "experiment":
        return _run_experiments(args.names, out=out)
    if args.command == "scenario":
        return _run_scenario(args.name, out=out, num_objects=args.num_objects)
    if args.command == "plan":
        return _run_plan(args, out=out)
    if args.command == "compare":
        return _run_compare(args, out=out)
    if args.command == "place":
        return _run_place(args, out=out)
    if args.command == "backend-sweep":
        return _run_backend_sweep(args, out=out)
    if args.command == "dynamic":
        return _run_dynamic(args, out=out)
    if args.command == "bench":
        return _run_bench(args, out=out)
    if args.command == "list":
        print("experiments:      ", ", ".join(EXPERIMENTS), file=out)
        print("scenarios:        ", ", ".join(SCENARIOS), file=out)
        print("dynamic scenarios:", ", ".join(DYNAMIC_SCENARIOS), file=out)
        print("strategies:       ", ", ".join(available_strategies()), file=out)
        print("  krw-sharded knobs: partition="
              f"{'|'.join(PARTITION_METHODS)}, num_shards (--shards), "
              "portals_per_shard (--portals); num_shards=1 equals krw",
              file=out)
        return 0
    parser.print_help(out)
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
