"""The immutable serving snapshot the daemon answers lookups from.

One :class:`ServingState` is everything a lookup needs -- the copy sets,
the generation that produced them, that generation's migration bill and
the cumulative bill so far -- frozen at publish time.  The daemon swaps
a fresh state in with a single attribute assignment (atomic under the
GIL), so a reader that grabbed the reference once can never observe a
half-published placement: every field it touches, including the
per-object nearest-replica cache, hangs off the one snapshot it holds.

The nearest-replica arrays are *lazy*: computed per object on first
lookup (one ``nearest_in_set`` backend query, vectorized over all
nodes), then memoized under a lock inside the snapshot -- concurrent
readers may race to compute the same arrays, which is idempotent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..core.placement import Placement

__all__ = ["ServingState", "LookupResult"]


@dataclass(frozen=True)
class LookupResult:
    """One answered lookup plus the provenance of the answer.

    ``generation``/``epoch``/``migration_cost`` identify the publish the
    answer came from -- the response metadata that lets a client (and
    the consistency test) pin every answer to exactly one publish.
    """

    obj: int
    node: int
    copies: tuple[int, ...]
    replica: int
    distance: float
    generation: int
    epoch: int
    migration_cost: float

    def to_dict(self) -> dict:
        return {
            "obj": self.obj,
            "node": self.node,
            "copies": list(self.copies),
            "replica": self.replica,
            "distance": self.distance,
            "generation": self.generation,
            "epoch": self.epoch,
            "migration_cost": self.migration_cost,
        }


class ServingState:
    """Immutable-by-convention placement snapshot with lookup caches.

    Parameters
    ----------
    metric:
        The distance backend replica lookups route through (shared
        across generations; its row cache is thread-safe).
    copy_sets:
        The published placement, one sorted node tuple per object.
    generation:
        Monotonic publish counter (0 = the cold zero-knowledge state).
    epoch:
        Number of sealed epochs folded into this state.
    migration_cost:
        The migration bill of the publish that produced this state.
    cumulative_cost:
        Serving + migration billed across all published epochs so far.
    """

    __slots__ = (
        "metric", "copy_sets", "generation", "epoch",
        "migration_cost", "cumulative_cost", "_nearest", "_nearest_lock",
    )

    def __init__(
        self,
        *,
        metric,
        copy_sets: tuple[tuple[int, ...], ...],
        generation: int,
        epoch: int,
        migration_cost: float = 0.0,
        cumulative_cost: float = 0.0,
    ) -> None:
        self.metric = metric
        self.copy_sets = tuple(tuple(int(v) for v in s) for s in copy_sets)
        self.generation = int(generation)
        self.epoch = int(epoch)
        self.migration_cost = float(migration_cost)
        self.cumulative_cost = float(cumulative_cost)
        # obj -> (nearest source per node, distance per node), lazy
        self._nearest: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._nearest_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return len(self.copy_sets)

    def as_placement(self) -> Placement:
        return Placement(self.copy_sets)

    # ------------------------------------------------------------------
    def _check_obj(self, obj: int) -> int:
        obj = int(obj)
        if not 0 <= obj < len(self.copy_sets):
            raise ValueError(
                f"unknown object {obj} (catalog has {len(self.copy_sets)})"
            )
        return obj

    def _nearest_arrays(self, obj: int) -> tuple[np.ndarray, np.ndarray]:
        cached = self._nearest.get(obj)
        if cached is None:
            cached = self.metric.nearest_in_set(self.copy_sets[obj])
            with self._nearest_lock:
                cached = self._nearest.setdefault(obj, cached)
        return cached

    # ------------------------------------------------------------------
    def placement(self, obj: int) -> tuple[int, ...]:
        """The copy set of one object in this generation."""
        return self.copy_sets[self._check_obj(obj)]

    def nearest_replica(self, obj: int, node: int) -> tuple[int, float]:
        """``(replica node, distance)`` for a request from ``node``."""
        obj = self._check_obj(obj)
        node = int(node)
        sources, dists = self._nearest_arrays(obj)
        if not 0 <= node < dists.shape[0]:
            raise ValueError(f"unknown node {node} (network has {dists.shape[0]})")
        return int(sources[node]), float(dists[node])

    def lookup(self, obj: int, node: int) -> LookupResult:
        """A full lookup answer with publish provenance attached."""
        obj = self._check_obj(obj)
        replica, distance = self.nearest_replica(obj, node)
        return LookupResult(
            obj=obj,
            node=int(node),
            copies=self.copy_sets[obj],
            replica=replica,
            distance=distance,
            generation=self.generation,
            epoch=self.epoch,
            migration_cost=self.migration_cost,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServingState(generation={self.generation}, epoch={self.epoch}, "
            f"objects={len(self.copy_sets)})"
        )
