"""The long-lived placement daemon: live ingest, background replans,
atomically published serving state, warm restarts.

The serving loop (see ARCHITECTURE.md for the dataflow picture):

1. **Ingest** -- :meth:`PlacementDaemon.ingest` folds a columnar
   :class:`~repro.simulate.events.RequestLog` batch into the pending
   per-(object, node) demand counters with one vectorized ``counts``
   call (:meth:`ingest_counts` takes pre-aggregated matrices directly).
2. **Seal** -- :meth:`end_epoch` freezes the pending window as one
   epoch and hands it to the background worker thread; the bounded
   hand-off queue (``config.serve_max_lag``) gives backpressure instead
   of unbounded lag when replans fall behind the stream.
3. **Replan** -- the worker detects drift against each object's demand
   at its last re-place (the shared
   :class:`~repro.workloads.drift.DriftTracker`), re-solves either the
   dirty subset (``replan_mode="incremental"``, via
   :meth:`~repro.engine.PlacementEngine.place_subset`) or the whole
   catalog, and bills the epoch: serving through the vectorized
   :class:`~repro.simulate.simulator.NetworkSimulator` replay (when the
   daemon knows the network graph) or the static
   :func:`~repro.core.costs.placement_cost`, plus migration through the
   replanner's batched :func:`~repro.simulate.replanner.migration_diff`.
4. **Publish** -- the worker builds a fresh immutable
   :class:`~repro.serve.state.ServingState` and swaps it in with one
   reference assignment.  Foreground lookups (:meth:`placement`,
   :meth:`nearest_replica`, :meth:`lookup`, :meth:`stats`) grab the
   reference once and answer entirely from that snapshot, so they
   always see exactly one generation -- never a mix -- while the next
   replan runs.

Accounting is *clairvoyant-per-epoch*, exactly the
:class:`~repro.simulate.replanner.EpochReplanner` convention: an epoch
is re-placed on its own demand, then its traffic is billed against the
new placement.  The daemon rebuilds each epoch's request log from its
accumulated count matrices
(:meth:`~repro.simulate.events.RequestLog.from_frequencies`, canonical
order), and the bill of a static replay is count-determined -- so at
``replan_tolerance=0`` a daemon fed a
:class:`~repro.workloads.dynamic.DynamicWorkload` epoch-by-epoch
produces the replanner's per-epoch placements and cumulative bill
bit-identically (gated by Experiment E19).

Warm restarts: :meth:`checkpoint_now` (and the cadence/SIGTERM paths)
persist generation, placement, drift anchors, cumulative bills and the
half-filled pending window through :mod:`repro.serve.checkpoint`;
:meth:`PlacementDaemon.restore` resumes bit-identically from the file.
"""

from __future__ import annotations

import queue
import signal
import threading
import time

import numpy as np

from ..config import PlanConfig
from ..core.instance import DataManagementInstance
from ..core.placement import Placement
from ..costmodel import get_cost_model
from ..engine import PlacementEngine
from ..simulate.events import RequestLog
from ..simulate.paths import PathCache
from ..simulate.simulator import NetworkSimulator
from ..workloads.drift import DriftTracker
from .checkpoint import DaemonCheckpoint, load_checkpoint, save_checkpoint
from .state import LookupResult, ServingState

__all__ = ["PlacementDaemon"]

#: Worker shutdown sentinel (never a sealed epoch).
_STOP = object()


class PlacementDaemon:
    """A serving daemon over one network and a fixed object catalog.

    Parameters
    ----------
    storage_costs:
        Per-node storage prices (length ``n``), shared by every epoch.
    num_objects:
        Catalog size ``m``; demand counters are ``(m, n)``.
    metric:
        Distance backend (dense :class:`~repro.graphs.metric.Metric` or
        thread-safe :class:`~repro.graphs.backend.LazyMetric`) lookups
        and solves route through.
    graph:
        The network graph.  When given, each sealed epoch's serving
        bill replays the epoch's request log through a
        :class:`~repro.simulate.simulator.NetworkSimulator` (the
        replanner's accounting).  Without it the daemon is
        *metric-only* and bills the configured cost model's closed-form
        ``bill_placement`` instead (for ``"krw"``:
        :func:`~repro.core.costs.placement_cost`) -- enough for the
        registry's offline ``daemon`` strategy.
    config:
        A :class:`~repro.config.PlanConfig`; ``replan_mode`` /
        ``replan_tolerance`` drive the background solve and the
        ``serve_*`` knobs drive trigger mode, checkpoint cadence and
        the replan-lag bound.
    checkpoint_path:
        Where warm state lands (``*.npz``).  Enables the
        ``serve_checkpoint_every`` cadence and the SIGTERM flush;
        :meth:`checkpoint_now` works without it when given a path.
    keep_history:
        Retain every published generation's copy sets (for parity
        harnesses and the lookup-consistency test; off by default so a
        long-lived daemon's memory stays bounded).
    """

    def __init__(
        self,
        storage_costs,
        num_objects: int,
        *,
        metric,
        graph=None,
        config: PlanConfig | None = None,
        checkpoint_path=None,
        keep_history: bool = False,
    ) -> None:
        self.storage_costs = np.asarray(storage_costs, dtype=float)
        if self.storage_costs.ndim != 1:
            raise ValueError("storage_costs must be a 1-D per-node vector")
        self.num_objects = int(num_objects)
        if self.num_objects < 1:
            raise ValueError("num_objects must be positive")
        self.metric = metric
        n = getattr(metric, "n", None) or len(metric)
        if self.storage_costs.shape[0] != n:
            raise ValueError(
                f"storage_costs has {self.storage_costs.shape[0]} nodes, "
                f"the metric has {n}"
            )
        self.num_nodes = int(n)
        self.graph = graph
        self.config = config if config is not None else PlanConfig()
        self.checkpoint_path = checkpoint_path
        self._path_cache = PathCache(graph) if graph is not None else None
        self._tracker = DriftTracker(tolerance=self.config.replan_tolerance)

        # -- pending (unsealed) window, guarded by the ingest lock
        self._ingest_lock = threading.Lock()
        self._pending_fr = np.zeros((self.num_objects, self.num_nodes))
        self._pending_fw = np.zeros((self.num_objects, self.num_nodes))
        self._totals_read = np.zeros(self.num_objects, dtype=np.int64)
        self._totals_write = np.zeros(self.num_objects, dtype=np.int64)
        self._events_ingested = 0
        self._epochs_sealed = 0

        # -- worker-owned accounting (only the worker thread mutates it)
        start = int(np.argmin(self.storage_costs))
        self._prev_sets: list[tuple[int, ...]] = [
            (start,) for _ in range(self.num_objects)
        ]
        self._serve_cost = 0.0
        self._migration_cost = 0.0
        self._records: list[dict] = []

        # -- the atomically swapped snapshot lookups read
        self._state = ServingState(
            metric=metric,
            copy_sets=tuple(self._prev_sets),
            generation=0,
            epoch=0,
        )
        self._history: dict[int, tuple[tuple[int, ...], ...]] | None = (
            {0: self._state.copy_sets} if keep_history else None
        )

        # -- background worker (started lazily on the first seal)
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.serve_max_lag)
        self._worker: threading.Thread | None = None
        self._worker_error: BaseException | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------
    @classmethod
    def restore(
        cls,
        path,
        *,
        storage_costs,
        metric,
        graph=None,
        config: PlanConfig | None = None,
        keep_history: bool = False,
    ) -> "PlacementDaemon":
        """Resume a daemon bit-identically from a warm-state checkpoint.

        ``config=None`` re-uses the config recorded in the checkpoint
        (the provenance path); passing one explicitly overrides it.
        The metric/graph are rebuilt by the caller -- network structure
        is environment, not daemon state.
        """
        cp = load_checkpoint(path)
        daemon = cls(
            storage_costs,
            cp.num_objects,
            metric=metric,
            graph=graph,
            config=config if config is not None else cp.plan_config(),
            checkpoint_path=path,
            keep_history=keep_history,
        )
        daemon._apply_checkpoint(cp)
        return daemon

    def _apply_checkpoint(self, cp: DaemonCheckpoint) -> None:
        if cp.num_nodes != self.num_nodes:
            raise ValueError(
                f"checkpoint is for a {cp.num_nodes}-node network, "
                f"this daemon serves {self.num_nodes} nodes"
            )
        if cp.primed:
            self._tracker.prime(cp.base_fr, cp.base_fw)
        self._pending_fr = cp.pending_fr.copy()
        self._pending_fw = cp.pending_fw.copy()
        self._totals_read = cp.totals_read.copy()
        self._totals_write = cp.totals_write.copy()
        self._events_ingested = int(cp.events_ingested)
        self._epochs_sealed = int(cp.epochs_published)
        self._prev_sets = list(cp.copy_sets)
        self._serve_cost = float(cp.serve_cost)
        self._migration_cost = float(cp.migration_cost)
        self._state = ServingState(
            metric=self.metric,
            copy_sets=cp.copy_sets,
            generation=int(cp.generation),
            epoch=int(cp.epochs_published),
            migration_cost=float(cp.last_migration),
            cumulative_cost=float(cp.serve_cost) + float(cp.migration_cost),
        )
        if self._history is not None:
            self._history[self._state.generation] = self._state.copy_sets

    # ------------------------------------------------------------------
    # ingest side (foreground)
    # ------------------------------------------------------------------
    def ingest(self, log) -> dict:
        """Fold one request batch into the pending window; returns a
        small receipt (events folded, window totals)."""
        self._check_open()
        log = RequestLog.coerce(log)
        log.validate_for(self.num_objects, self.num_nodes)
        fr, fw = log.counts(self.num_objects, self.num_nodes)
        reads, writes = log.counts_by_object(self.num_objects)
        with self._ingest_lock:
            self._pending_fr += fr
            self._pending_fw += fw
            self._totals_read += reads
            self._totals_write += writes
            self._events_ingested += len(log)
            pending = float(self._pending_fr.sum() + self._pending_fw.sum())
        return {
            "events": len(log),
            "pending_events": pending,
            "epoch": self._epochs_sealed,
        }

    def ingest_counts(self, read_freq, write_freq) -> dict:
        """Fold pre-aggregated ``(m, n)`` demand matrices directly (what
        ``repro serve replay`` feeds from a ``DynamicWorkload`` epoch).

        Graph-billed daemons need integer-valued counts -- the epoch log
        is rebuilt from them at seal time; metric-only daemons accept
        any non-negative demand.
        """
        self._check_open()
        fr = np.asarray(read_freq, dtype=float)
        fw = np.asarray(write_freq, dtype=float)
        shape = (self.num_objects, self.num_nodes)
        if fr.shape != shape or fw.shape != shape:
            raise ValueError(
                f"demand matrices must have shape {shape}, "
                f"got {fr.shape} and {fw.shape}"
            )
        if not (np.isfinite(fr).all() and np.isfinite(fw).all()):
            raise ValueError("demand must be finite")
        if (fr < 0).any() or (fw < 0).any():
            raise ValueError("demand must be non-negative")
        events = int(round(float(fr.sum() + fw.sum())))
        with self._ingest_lock:
            self._pending_fr += fr
            self._pending_fw += fw
            self._totals_read += fr.sum(axis=1).astype(np.int64)
            self._totals_write += fw.sum(axis=1).astype(np.int64)
            self._events_ingested += events
            pending = float(self._pending_fr.sum() + self._pending_fw.sum())
        return {
            "events": events,
            "pending_events": pending,
            "epoch": self._epochs_sealed,
        }

    def end_epoch(self, *, wait: bool = True) -> int:
        """Seal the pending window as one epoch and schedule its replan.

        Returns the sealed epoch index.  ``wait=True`` (default) blocks
        until the epoch is published -- deterministic replay/parity
        mode; ``wait=False`` returns as soon as the epoch is queued, so
        the foreground keeps answering from the previous generation
        while the worker replans.  With ``config.serve_max_lag`` epochs
        already in flight the call blocks either way (backpressure).
        """
        self._check_open()
        self._raise_worker_error()
        with self._ingest_lock:
            fr = self._pending_fr
            fw = self._pending_fw
            self._pending_fr = np.zeros_like(fr)
            self._pending_fw = np.zeros_like(fw)
            epoch = self._epochs_sealed
            self._epochs_sealed += 1
        self._ensure_worker()
        self._queue.put((epoch, fr, fw))
        if wait:
            self.drain()
        return epoch

    def drain(self) -> None:
        """Block until every sealed epoch has been published (re-raising
        any background replan failure here, in the caller's thread)."""
        self._queue.join()
        self._raise_worker_error()

    # ------------------------------------------------------------------
    # lookup side (foreground, any thread)
    # ------------------------------------------------------------------
    def snapshot(self) -> ServingState:
        """The current immutable serving state (one atomic read)."""
        return self._state

    def placement(self, obj: int) -> tuple[int, ...]:
        """Current copy set of one object."""
        return self._state.placement(obj)

    def nearest_replica(self, obj: int, node: int) -> tuple[int, float]:
        """``(replica node, distance)`` for a request from ``node``."""
        return self._state.nearest_replica(obj, node)

    def lookup(self, obj: int, node: int) -> LookupResult:
        """Full lookup with the publishing generation's metadata."""
        return self._state.lookup(obj, node)

    def stats(self) -> dict:
        """Serving/ingest counters plus the published state's identity."""
        state = self._state  # one snapshot: internally consistent
        with self._ingest_lock:
            events = self._events_ingested
            sealed = self._epochs_sealed
            pending = float(self._pending_fr.sum() + self._pending_fw.sum())
            reads = int(self._totals_read.sum())
            writes = int(self._totals_write.sum())
        return {
            "generation": state.generation,
            "epochs_published": state.epoch,
            "epochs_sealed": sealed,
            "replan_backlog": sealed - state.epoch,
            "events_ingested": events,
            "reads": reads,
            "writes": writes,
            "pending_events": pending,
            "serve_cost": self._serve_cost,
            "migration_cost": self._migration_cost,
            "total_cost": state.cumulative_cost,
            "num_objects": self.num_objects,
            "num_nodes": self.num_nodes,
            "replan_mode": self.config.replan_mode,
            "replan_tolerance": self.config.replan_tolerance,
            "serve_trigger": self.config.serve_trigger,
        }

    @property
    def epoch_records(self) -> list[dict]:
        """Per-published-epoch accounting rows (copy; oldest first)."""
        return list(self._records)

    def generation_placement(self, generation: int) -> tuple[tuple[int, ...], ...]:
        """A historical generation's copy sets (``keep_history=True``)."""
        if self._history is None:
            raise ValueError("daemon was not started with keep_history=True")
        try:
            return self._history[int(generation)]
        except KeyError:
            raise ValueError(f"unknown generation {generation}") from None

    # ------------------------------------------------------------------
    # background worker
    # ------------------------------------------------------------------
    def _ensure_worker(self) -> None:
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._worker_loop, name="repro-serve-replan", daemon=True
            )
            self._worker.start()

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self._process_epoch(*item)
            except BaseException as exc:  # surfaced via drain()/end_epoch()
                if self._worker_error is None:
                    self._worker_error = exc
            finally:
                self._queue.task_done()

    def _raise_worker_error(self) -> None:
        if self._worker_error is not None:
            raise RuntimeError(
                "background replan failed"
            ) from self._worker_error

    def _process_epoch(self, epoch: int, fr: np.ndarray, fw: np.ndarray) -> None:
        """Replan + bill one sealed epoch, then publish (worker thread)."""
        config = self.config
        incremental = config.replan_mode == "incremental"
        inst = DataManagementInstance(self.metric, self.storage_costs, fr, fw)
        t0 = time.perf_counter()
        if not self._tracker.primed:
            # zero-knowledge start: the first sealed epoch always solves
            # the whole catalog (the replanner's epoch-0 convention)
            placement = PlacementEngine.from_config(inst, config).place()
            replaced = self.num_objects
            self._tracker.prime(fr, fw)
        else:
            dirty = self._tracker.drifted(fr, fw)
            if dirty.size == 0 and config.serve_trigger == "drift":
                # nothing crossed the tolerance: carry the placement
                placement = Placement(tuple(self._prev_sets))
                replaced = 0
            elif incremental:
                solved = PlacementEngine.from_config(inst, config).place_subset(
                    dirty
                )
                copy_sets = list(self._prev_sets)
                for obj, copies in solved.items():
                    copy_sets[obj] = copies
                placement = Placement(tuple(copy_sets))
                replaced = len(solved)
                if replaced:
                    self._tracker.rebase(dirty, fr, fw)
            else:
                placement = PlacementEngine.from_config(inst, config).place()
                replaced = self.num_objects
                self._tracker.prime(fr, fw)
        # the replanner's accounting seam: one cost model bills the
        # migration and the epoch serve alike
        model = get_cost_model(config.cost_model)
        migration, added, dropped = model.bill_migration(
            self.metric, self._prev_sets, placement.copy_sets
        )
        solve_time = time.perf_counter() - t0

        if self.graph is not None:
            # the replanner's accounting: replay the epoch's canonical
            # log against the freshly published placement
            sim = NetworkSimulator(
                self.graph, inst, update_policy="mst",
                path_cache=self._path_cache, cost_model=model,
            )
            log = RequestLog.from_frequencies(fr, fw)
            serve_cost = sim.run(placement, log).total_cost
        else:
            serve_cost = model.bill_placement(
                inst, placement, policy=config.cost_policy
            ).total

        self._serve_cost += serve_cost
        self._migration_cost += migration
        self._prev_sets = list(placement.copy_sets)
        state = ServingState(
            metric=self.metric,
            copy_sets=placement.copy_sets,
            generation=self._state.generation + 1,
            epoch=epoch + 1,
            migration_cost=migration,
            cumulative_cost=self._serve_cost + self._migration_cost,
        )
        self._records.append(
            {
                "epoch": epoch,
                "generation": state.generation,
                "serve_cost": float(serve_cost),
                "migration_cost": float(migration),
                "total_cost": float(serve_cost) + float(migration),
                "replaced": int(replaced),
                "copies_added": int(added),
                "copies_dropped": int(dropped),
                "solve_time_s": float(solve_time),
            }
        )
        if self._history is not None:
            self._history[state.generation] = state.copy_sets
        # THE publish: one reference swap, atomic for every reader
        self._state = state

        cadence = int(self.config.serve_checkpoint_every)
        if (
            self.checkpoint_path is not None
            and cadence > 0
            and state.epoch % cadence == 0
            and self._queue.qsize() == 0
        ):
            # opportunistic: only when the pipeline is empty, so the
            # checkpoint captures a consistent published-up-to-here
            # point (sealed-but-unpublished epochs are never dropped)
            self._write_checkpoint(self.checkpoint_path)

    # ------------------------------------------------------------------
    # checkpointing / shutdown
    # ------------------------------------------------------------------
    def _build_checkpoint(self) -> DaemonCheckpoint:
        state = self._state
        base_fr = base_fw = None
        if self._tracker.primed:
            base_fr, base_fw = self._tracker.anchors
        with self._ingest_lock:
            pending_fr = self._pending_fr.copy()
            pending_fw = self._pending_fw.copy()
            totals_read = self._totals_read.copy()
            totals_write = self._totals_write.copy()
            events = self._events_ingested
        return DaemonCheckpoint(
            generation=state.generation,
            epochs_published=state.epoch,
            events_ingested=events,
            copy_sets=state.copy_sets,
            serve_cost=self._serve_cost,
            migration_cost=self._migration_cost,
            last_migration=state.migration_cost,
            base_fr=base_fr,
            base_fw=base_fw,
            pending_fr=pending_fr,
            pending_fw=pending_fw,
            totals_read=totals_read,
            totals_write=totals_write,
            config=self.config.to_dict(),
        )

    def _write_checkpoint(self, path) -> None:
        save_checkpoint(self._build_checkpoint(), path)

    def checkpoint_now(self, path=None) -> DaemonCheckpoint:
        """Drain the replan pipeline, then persist (and return) the warm
        state.  Call from the foreground; the cadence checkpoints inside
        the worker use the same writer without the drain."""
        self.drain()
        cp = self._build_checkpoint()
        target = path if path is not None else self.checkpoint_path
        if target is not None:
            save_checkpoint(cp, target)
        return cp

    def install_signal_handlers(self) -> bool:
        """Checkpoint-and-exit on SIGTERM (CLI daemons).  Returns False
        off the main thread, where Python forbids signal handlers."""
        try:
            signal.signal(signal.SIGTERM, self._handle_sigterm)
        except ValueError:
            return False
        return True

    def _handle_sigterm(self, signum=None, frame=None) -> None:
        self.close()
        raise SystemExit(0)

    def close(self) -> None:
        """Drain, final-checkpoint (when a path is configured) and stop
        the worker.  Idempotent; the daemon is a context manager."""
        if self._closed:
            return
        self._queue.join()
        if self.checkpoint_path is not None:
            self._write_checkpoint(self.checkpoint_path)
        if self._worker is not None and self._worker.is_alive():
            self._queue.put(_STOP)
            self._worker.join()
        self._closed = True
        self._raise_worker_error()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("daemon is closed")

    def __enter__(self) -> "PlacementDaemon":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self._state
        return (
            f"PlacementDaemon(objects={self.num_objects}, "
            f"nodes={self.num_nodes}, generation={state.generation}, "
            f"epochs={state.epoch})"
        )
