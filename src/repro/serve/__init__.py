"""The live serving subsystem: a long-lived placement daemon.

Everything before this package answers *"where should copies live for a
fixed demand snapshot?"*; :class:`PlacementDaemon` keeps that answer
fresh against a live request stream -- ingest batches, detect drift,
replan in the background, publish atomically, checkpoint warm state --
while foreground lookups keep answering from one immutable
:class:`ServingState` generation at a time.  See the
:mod:`repro.serve.daemon` docstring for the loop's contract and
ARCHITECTURE.md for the dataflow.
"""

from .checkpoint import DaemonCheckpoint, load_checkpoint, save_checkpoint
from .daemon import PlacementDaemon
from .replay import compare_with_replanner, replay_workload
from .spool import read_spool_file, spool_files, write_spool_file
from .state import LookupResult, ServingState

__all__ = [
    "PlacementDaemon",
    "ServingState",
    "LookupResult",
    "DaemonCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "replay_workload",
    "compare_with_replanner",
    "read_spool_file",
    "write_spool_file",
    "spool_files",
]
