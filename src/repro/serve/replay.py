"""Drive a daemon from a recorded :class:`DynamicWorkload` horizon.

The bridge between the live subsystem and the batch baselines:
:func:`replay_workload` feeds a workload's epochs through a daemon one
``ingest_counts`` + ``end_epoch`` pair at a time, and
:func:`compare_with_replanner` runs the matching
:class:`~repro.simulate.replanner.EpochReplanner` on the *same* config
and checks per-epoch placement identity and bill parity -- the
tolerance-0 bit-identity contract the CI daemon smoke and Experiment
E19 gate.
"""

from __future__ import annotations

import numpy as np

from ..config import PlanConfig
from ..simulate.replanner import EpochReplanner
from .daemon import PlacementDaemon

__all__ = ["replay_workload", "compare_with_replanner"]


def replay_workload(daemon: PlacementDaemon, workload, *, wait: bool = True) -> list[dict]:
    """Feed every epoch of ``workload`` through ``daemon`` and return its
    per-epoch accounting records (one sealed epoch per workload epoch)."""
    for e in range(workload.num_epochs):
        daemon.ingest_counts(workload.read_freqs[e], workload.write_freqs[e])
        daemon.end_epoch(wait=wait)
    daemon.drain()
    return daemon.epoch_records


def compare_with_replanner(
    graph,
    metric,
    storage_costs,
    workload,
    config: PlanConfig | None = None,
) -> dict:
    """Replay ``workload`` through a fresh daemon *and* an
    :class:`~repro.simulate.replanner.EpochReplanner` on the same
    config; returns the parity verdict.

    The dict carries ``identical`` (every epoch's copy sets match --
    guaranteed at ``replan_tolerance=0``), ``cost_ratio`` (daemon total
    over replanner total), both totals, per-epoch records, and the
    daemon itself is closed before returning.
    """
    config = config if config is not None else PlanConfig()
    daemon = PlacementDaemon(
        storage_costs,
        workload.num_objects,
        metric=metric,
        graph=graph,
        config=config,
        keep_history=True,
    )
    try:
        records = replay_workload(daemon, workload)
        daemon_total = float(daemon.snapshot().cumulative_cost)
        daemon_placements = [
            daemon.generation_placement(r["generation"]) for r in records
        ]
    finally:
        daemon.close()

    replanner = EpochReplanner(graph, metric, storage_costs, config=config)
    result = replanner.run(workload)

    identical = len(result.epochs) == len(records)
    per_epoch = []
    for e, (rep, rec) in enumerate(zip(result.epochs, records)):
        same_sets = daemon_placements[e] == rep.placement.copy_sets
        bills_close = np.isclose(
            rec["total_cost"], rep.total_cost, rtol=1e-9, atol=0.0
        )
        identical = identical and same_sets and bool(bills_close)
        per_epoch.append(
            {
                "epoch": e,
                "daemon_cost": rec["total_cost"],
                "replanner_cost": rep.total_cost,
                "placements_match": bool(same_sets),
                "daemon_replaced": rec["replaced"],
                "replanner_replaced": rep.replaced_objects,
            }
        )
    replanner_total = float(result.total_cost)
    return {
        "identical": bool(identical),
        "daemon_total": daemon_total,
        "replanner_total": replanner_total,
        "cost_ratio": (
            daemon_total / replanner_total if replanner_total else float("nan")
        ),
        "epochs": per_epoch,
        "records": records,
    }
