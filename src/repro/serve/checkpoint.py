"""Warm-state checkpoints: everything a daemon restart must not lose.

A checkpoint captures the daemon's full resume state *between* epochs:
the published placement and generation, the drift anchors (demand at
each object's last re-place), the cumulative bills as the exact floats
the running daemon accumulated (so a restarted daemon keeps summing in
the same order and lands on the bit-identical total), the per-object
demand totals, and the still-unsealed pending counters -- a daemon
killed mid-batch resumes with the half-window intact instead of
dropping it.

Storage rides :func:`repro.serialize.save_array_archive` (compressed
NPZ + canonical-JSON header, ``allow_pickle=False`` on load), with the
placement and the config embedded through the same
``ragged_to_arrays`` / ``PlanConfig.to_dict`` forms every other
artifact uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..config import PlanConfig
from ..serialize import (
    load_array_archive,
    ragged_from_arrays,
    ragged_to_arrays,
    save_array_archive,
)

__all__ = ["DaemonCheckpoint", "save_checkpoint", "load_checkpoint"]

_FORMAT = "repro-serve-checkpoint"


@dataclass(frozen=True)
class DaemonCheckpoint:
    """One daemon's frozen resume state (see the module docstring)."""

    generation: int
    epochs_published: int
    events_ingested: int
    copy_sets: tuple[tuple[int, ...], ...]
    serve_cost: float
    migration_cost: float
    last_migration: float
    base_fr: np.ndarray | None       # drift anchors; None before 1st solve
    base_fw: np.ndarray | None
    pending_fr: np.ndarray           # unsealed batch-window counters
    pending_fw: np.ndarray
    totals_read: np.ndarray          # cumulative per-object event counts
    totals_write: np.ndarray
    config: dict                     # PlanConfig.to_dict() provenance

    @property
    def num_objects(self) -> int:
        return len(self.copy_sets)

    @property
    def num_nodes(self) -> int:
        return int(self.pending_fr.shape[1])

    @property
    def primed(self) -> bool:
        return self.base_fr is not None

    def plan_config(self) -> PlanConfig:
        return PlanConfig.from_dict(self.config)


def save_checkpoint(cp: DaemonCheckpoint, path) -> None:
    """Atomically persist a checkpoint (write-then-rename, like the
    bench trial store: a kill mid-write leaves the old file intact)."""
    path = Path(path)
    nodes, offsets = ragged_to_arrays(cp.copy_sets)
    arrays = {
        "placement_nodes": nodes,
        "placement_offsets": offsets,
        "pending_fr": cp.pending_fr,
        "pending_fw": cp.pending_fw,
        "totals_read": cp.totals_read,
        "totals_write": cp.totals_write,
        # bills as float64 arrays: the NPZ round-trip is bit-exact,
        # which the warm-restart bit-identity guarantee leans on
        "bills": np.asarray(
            [cp.serve_cost, cp.migration_cost, cp.last_migration], dtype=float
        ),
    }
    if cp.base_fr is not None:
        arrays["base_fr"] = cp.base_fr
        arrays["base_fw"] = cp.base_fw
    meta = {
        "generation": cp.generation,
        "epochs_published": cp.epochs_published,
        "events_ingested": cp.events_ingested,
        "primed": cp.primed,
        "config": cp.config,
    }
    tmp = path.with_name(path.name + ".tmp.npz")
    save_array_archive(tmp, fmt=_FORMAT, meta=meta, arrays=arrays)
    tmp.replace(path)


def load_checkpoint(path) -> DaemonCheckpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    meta, arrays = load_array_archive(path, fmt=_FORMAT)
    primed = bool(meta["primed"])
    bills = np.asarray(arrays["bills"], dtype=float)
    return DaemonCheckpoint(
        generation=int(meta["generation"]),
        epochs_published=int(meta["epochs_published"]),
        events_ingested=int(meta["events_ingested"]),
        copy_sets=ragged_from_arrays(
            arrays["placement_nodes"], arrays["placement_offsets"]
        ),
        serve_cost=float(bills[0]),
        migration_cost=float(bills[1]),
        last_migration=float(bills[2]),
        base_fr=np.asarray(arrays["base_fr"], dtype=float) if primed else None,
        base_fw=np.asarray(arrays["base_fw"], dtype=float) if primed else None,
        pending_fr=np.asarray(arrays["pending_fr"], dtype=float),
        pending_fw=np.asarray(arrays["pending_fw"], dtype=float),
        totals_read=np.asarray(arrays["totals_read"], dtype=np.int64),
        totals_write=np.asarray(arrays["totals_write"], dtype=np.int64),
        config=dict(meta["config"]),
    )
