"""File-based batch hand-off for the CLI daemon (no network needed).

A *spool* is a directory of request-batch files a producer drops and
``repro serve run`` ingests in sorted-name order (name them
``00001.jsonl``, ``00002.jsonl``, ... for a deterministic stream).
Two formats, chosen by suffix:

* ``*.jsonl`` / ``*.json`` -- one event per line,
  ``{"kind": "read" | "write", "node": 3, "obj": 7}`` (human-writable);
* ``*.npz`` -- the columnar :class:`~repro.simulate.events.RequestLog`
  arrays (``kind``/``node``/``obj``), for big batches.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..simulate.events import KIND_READ, KIND_WRITE, RequestLog

__all__ = ["read_spool_file", "write_spool_file", "spool_files"]

_KIND_NAMES = {KIND_READ: "read", KIND_WRITE: "write"}
_KIND_CODES = {"read": KIND_READ, "write": KIND_WRITE}
_SUFFIXES = (".jsonl", ".json", ".npz")


def write_spool_file(log: RequestLog, path) -> None:
    """Write one batch in the format the suffix picks."""
    path = Path(path)
    if path.suffix == ".npz":
        np.savez_compressed(
            path,
            meta=np.str_(json.dumps({"format": "repro-spool"})),
            kind=log.kind, node=log.node, obj=log.obj,
        )
        return
    if path.suffix not in (".jsonl", ".json"):
        raise ValueError(
            f"spool files are {', '.join(_SUFFIXES)}; got {path.name}"
        )
    lines = [
        json.dumps(
            {"kind": _KIND_NAMES[int(k)], "node": int(v), "obj": int(o)}
        )
        for k, v, o in zip(log.kind.tolist(), log.node.tolist(), log.obj.tolist())
    ]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))


def read_spool_file(path) -> RequestLog:
    """Read one batch file back as a columnar log."""
    path = Path(path)
    if path.suffix == ".npz":
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            if meta.get("format") != "repro-spool":
                raise ValueError(f"{path} is not a spooled request batch")
            return RequestLog(
                kind=np.asarray(archive["kind"]),
                node=np.asarray(archive["node"]),
                obj=np.asarray(archive["obj"]),
            )
    if path.suffix not in (".jsonl", ".json"):
        raise ValueError(
            f"spool files are {', '.join(_SUFFIXES)}; got {path.name}"
        )
    kinds: list[int] = []
    nodes: list[int] = []
    objs: list[int] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
            kinds.append(_KIND_CODES[event["kind"]])
            nodes.append(int(event["node"]))
            objs.append(int(event["obj"]))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"{path}:{lineno}: not a spool event "
                '({"kind": "read"|"write", "node": int, "obj": int}): '
                f"{line[:80]}"
            ) from exc
    return RequestLog(
        kind=np.asarray(kinds, dtype=np.uint8),
        node=np.asarray(nodes, dtype=np.int64),
        obj=np.asarray(objs, dtype=np.int64),
    )


def spool_files(directory) -> list[Path]:
    """Batch files of a spool directory, in sorted-name (ingest) order."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ValueError(f"spool directory {directory} does not exist")
    return sorted(
        p for p in directory.iterdir()
        if p.is_file() and p.suffix in _SUFFIXES
    )
