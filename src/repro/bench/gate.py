"""The BENCH regression gate: committed artifacts become checked claims.

Each committed ``benchmarks/BENCH_*.json`` artifact records one
experiment's full-scale trajectory (E10b backend sweep, E14 catalog
throughput, E15 dynamic replay, E16 incremental replan, E17 worker
transport + kernel dispatch, E18 sharded placement, E19 serving
daemon, E20 cost-model seam).  A
:class:`GateSpec` turns that prose-adjacent artifact into a machine
checked contract, in two tiers:

``artifact``
    Validate the committed file itself: schema (exact headers, per
    column dtypes) and the headline claims it was committed for --
    parity bits exactly (copy-set equality, bill identity must be
    ``True``; cost ratios within ``1e-9``), wall-clock-derived numbers
    inside a tolerance band (a speedup committed as 5.4x gates at
    >= 5.0x minus the band, because timings jitter between machines,
    not because the claim is soft).

``smoke``
    Re-run a budgeted tiny configuration of the same experiment through
    the trial harness (cached in a :class:`~repro.bench.store.TrialStore`,
    so unchanged trees re-check for free) and apply the scale-free
    subset of the checks: parity and identity must hold at *any* size;
    throughput claims are artifact-tier only, since a 60-node smoke run
    measures pool overhead, not scaling.

Tolerance semantics follow the approximate-data-structures framing
(Matias--Vitter--Young): numeric drift inside the declared band is
accepted, structural or ratio regressions are not.  On failure
:func:`run_gate` renders a readable expected-vs-actual diff and maps to
distinct exit codes: ``0`` pass, ``1`` regression, ``3`` missing
artifact (``2`` is the CLI's usage-error code).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .runner import run_sweep
from .store import TrialStore
from .trials import TrialConfig

__all__ = [
    "Check",
    "GateSpec",
    "Finding",
    "GateReport",
    "GATES",
    "check_payload",
    "validate_schema",
    "run_gate",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "EXIT_MISSING_ARTIFACT",
]

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_MISSING_ARTIFACT = 3

#: Sentinel cell for "not applicable" in result tables.
_DASH = "--"

#: Default relative band for wall-clock-derived metrics (speedups):
#: machine jitter tolerance, not claim softening.
TIME_BAND = 0.2

#: Relative band for bill/ratio identity ("exact" up to float noise).
IDENTITY_TOL = 1e-9


@dataclass(frozen=True)
class Check:
    """One tolerance-banded claim about a result table.

    Rows are filtered by the ``where`` equality pairs, the ``column``
    cells are collected with ``"--"`` cells skipped, and every
    remaining cell must satisfy ``op``:

    ``is_true``
        exact parity bit -- the cell must be ``True``;
    ``approx``
        ``|cell - value| <= rel_tol * max(|value|, 1e-12)``;
    ``ge`` / ``le``
        banded bound: ``cell >= value * (1 - rel_tol)`` /
        ``cell <= value * (1 + rel_tol)``;
    ``gt``
        strict ``cell > value`` (no band);
    ``min_le``
        the *minimum* over the cells must be ``<= value * (1 + rel_tol)``
        (for sweeps where only the best row carries the claim).

    A filter that matches no usable cell fails the check -- a gate that
    silently checks nothing is worse than one that fails loudly.
    """

    label: str
    column: str
    op: str
    value: float | None = None
    rel_tol: float = 0.0
    where: tuple = ()
    tiers: tuple = ("artifact", "smoke")


@dataclass(frozen=True)
class GateSpec:
    """Schema + checks + smoke recipe for one gated experiment."""

    experiment: str                  # EXPERIMENT_RUNNERS key, e.g. "E10B"
    exp_id: str                      # artifact exp_id field, e.g. "E10b"
    artifact: str                    # file name under the artifact dir
    headers: tuple
    #: header -> dtype: "str" | "number" | "number?" | "bool?"
    #: ("?" marks columns where the "--" sentinel is legal).
    columns: dict = field(default_factory=dict)
    checks: tuple = ()
    smoke_params: dict = field(default_factory=dict)

    def smoke_trial(self) -> TrialConfig:
        return TrialConfig.make(self.experiment, **self.smoke_params)


@dataclass(frozen=True)
class Finding:
    """One check/schema outcome; ``detail`` is the expected-vs-actual text."""

    exp_id: str
    tier: str
    label: str
    ok: bool
    detail: str = ""
    missing_artifact: bool = False


@dataclass
class GateReport:
    """Everything one gate run found, with the derived exit code."""

    findings: list = field(default_factory=list)

    @property
    def failures(self) -> list:
        return [f for f in self.findings if not f.ok]

    @property
    def passed(self) -> bool:
        return not self.failures

    @property
    def exit_code(self) -> int:
        if any(f.missing_artifact for f in self.findings):
            return EXIT_MISSING_ARTIFACT
        return EXIT_OK if self.passed else EXIT_REGRESSION

    def render(self) -> str:
        lines = []
        for exp_id in dict.fromkeys(f.exp_id for f in self.findings):
            per_exp = [f for f in self.findings if f.exp_id == exp_id]
            bad = [f for f in per_exp if not f.ok]
            verdict = "FAIL" if bad else "ok"
            lines.append(f"[{exp_id}] {verdict} "
                         f"({len(per_exp) - len(bad)}/{len(per_exp)} checks)")
            for f in per_exp:
                mark = "ok  " if f.ok else "FAIL"
                detail = f" -- {f.detail}" if f.detail else ""
                lines.append(f"  {mark} {f.tier:8s} {f.label}{detail}")
        total_bad = len(self.failures)
        lines.append(
            "gate: all checks passed" if not total_bad
            else f"gate: {total_bad} check(s) failed"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# schema + check evaluation
# ----------------------------------------------------------------------
def _cell_ok(kind: str, cell) -> bool:
    if kind.endswith("?") and cell == _DASH:
        return True
    kind = kind.rstrip("?")
    if kind == "str":
        return isinstance(cell, str)
    if kind == "bool":
        return isinstance(cell, bool)
    if kind == "number":
        return isinstance(cell, (int, float)) and not isinstance(cell, bool)
    raise ValueError(f"unknown column kind {kind!r}")


def _check_schema(spec: GateSpec, payload, tier: str) -> list[Finding]:
    def finding(ok: bool, detail: str = "") -> Finding:
        return Finding(spec.exp_id, tier, "schema", ok, detail)

    if not isinstance(payload, dict):
        return [finding(False, "payload is not a JSON object")]
    missing = sorted(
        {"exp_id", "title", "headers", "rows", "notes"} - set(payload)
    )
    if missing:
        return [finding(False, f"missing key(s) {missing}")]
    if payload["exp_id"] != spec.exp_id:
        return [finding(
            False, f"exp_id {payload['exp_id']!r} != {spec.exp_id!r}"
        )]
    headers = tuple(payload["headers"])
    if headers != spec.headers:
        return [finding(
            False, f"headers {list(headers)} != {list(spec.headers)}"
        )]
    rows = payload["rows"]
    if not isinstance(rows, list) or not rows:
        return [finding(False, "rows must be a non-empty list")]
    for r, row in enumerate(rows):
        if not isinstance(row, list) or len(row) != len(headers):
            return [finding(
                False, f"row {r} has {len(row)} cells, expected {len(headers)}"
            )]
        for header, cell in zip(headers, row):
            kind = spec.columns.get(header)
            if kind is not None and not _cell_ok(kind, cell):
                return [finding(
                    False,
                    f"row {r} column {header!r}: {cell!r} is not {kind}",
                )]
    return [finding(True)]


def _select_cells(spec: GateSpec, payload: dict, check: Check) -> list:
    col = spec.headers.index(check.column)
    where = [(spec.headers.index(h), v) for h, v in check.where]
    cells = []
    for row in payload["rows"]:
        if all(row[i] == v for i, v in where):
            if row[col] != _DASH:
                cells.append(row[col])
    return cells


def _eval_check(spec: GateSpec, payload: dict, check: Check, tier: str) -> Finding:
    def finding(ok: bool, detail: str) -> Finding:
        return Finding(spec.exp_id, tier, check.label, ok, detail)

    try:
        cells = _select_cells(spec, payload, check)
    except ValueError:
        return finding(False, f"column {check.column!r} not in headers")
    if not cells:
        cond = ", ".join(f"{h}={v!r}" for h, v in check.where) or "any row"
        return finding(False, f"no usable {check.column!r} cell where {cond}")

    v, tol = check.value, check.rel_tol
    if check.op == "is_true":
        bad = [c for c in cells if c is not True]
        return finding(
            not bad, f"expected True, got {bad}" if bad else f"{len(cells)} True"
        )
    if check.op == "approx":
        bad = [c for c in cells if abs(c - v) > tol * max(abs(v), 1e-12)]
        return finding(
            not bad,
            f"expected {v} +/- {tol} rel, got {bad}" if bad
            else f"{len(cells)} within {tol} rel of {v}",
        )
    if check.op == "ge":
        bound = v * (1.0 - tol)
        bad = [c for c in cells if c < bound]
        return finding(
            not bad,
            f"expected >= {bound:g} (= {v:g} - {tol:.0%} band), got {bad}"
            if bad else f"{len(cells)} >= {bound:g}",
        )
    if check.op == "le":
        bound = v * (1.0 + tol)
        bad = [c for c in cells if c > bound]
        return finding(
            not bad,
            f"expected <= {bound:g} (= {v:g} + {tol:.0%} band), got {bad}"
            if bad else f"{len(cells)} <= {bound:g}",
        )
    if check.op == "gt":
        bad = [c for c in cells if not c > v]
        return finding(
            not bad, f"expected > {v:g}, got {bad}" if bad else f"{len(cells)} > {v:g}"
        )
    if check.op == "min_le":
        best = min(cells)
        bound = v * (1.0 + tol)
        return finding(
            best <= bound,
            f"min {best:g} vs bound {bound:g} (= {v:g} + {tol:.0%} band)",
        )
    return finding(False, f"unknown check op {check.op!r}")


def validate_schema(spec: GateSpec, payload) -> None:
    """Raise ``ValueError`` unless ``payload`` matches the spec's schema.

    The benchmark emit path calls this *before* persisting a refreshed
    ``BENCH_*.json``, so an artifact that the gate could not parse never
    reaches disk in the first place.
    """
    findings = _check_schema(spec, payload, "emit")
    if not findings[-1].ok:
        raise ValueError(
            f"{spec.exp_id} artifact fails its gate schema: "
            f"{findings[-1].detail}"
        )


def check_payload(spec: GateSpec, payload, tier: str) -> list[Finding]:
    """Schema-validate ``payload`` and apply the tier's checks.

    A schema failure short-circuits the metric checks -- they would
    only cascade into confusing index errors.
    """
    findings = _check_schema(spec, payload, tier)
    if not findings[-1].ok:
        return findings
    for check in spec.checks:
        if tier in check.tiers:
            findings.append(_eval_check(spec, payload, check, tier))
    return findings


# ----------------------------------------------------------------------
# the gated experiments
# ----------------------------------------------------------------------
GATES: dict[str, GateSpec] = {}


def _register(spec: GateSpec) -> GateSpec:
    GATES[spec.experiment] = spec
    return spec


_register(GateSpec(
    experiment="E10B",
    exp_id="E10b",
    artifact="BENCH_e10_backend_sweep.json",
    headers=("topology", "n", "backend", "time (s)", "peak MB",
             "dense matrix MB", "peak / dense matrix", "copies",
             "matches dense"),
    columns={
        "topology": "str", "n": "number", "backend": "str",
        "time (s)": "number", "peak MB": "number",
        "dense matrix MB": "number", "peak / dense matrix": "number",
        "copies": "number", "matches dense": "bool?",
    },
    checks=(
        Check("lazy placements match dense", "matches dense", "is_true"),
        Check("lazy peak memory beats the dense closure at scale",
              "peak / dense matrix", "min_le", value=0.3, rel_tol=TIME_BAND,
              where=(("backend", "lazy"),), tiers=("artifact",)),
    ),
    smoke_params=dict(sizes=[40, 70], dense_limit=4000, seed=7),
))

_register(GateSpec(
    experiment="E14",
    exp_id="E14",
    artifact="BENCH_e14_catalog.json",
    headers=("mode", "objects", "n", "time (s)", "objects/s",
             "speedup vs loop", "total copies", "matches loop"),
    columns={
        "mode": "str", "objects": "number", "n": "number",
        "time (s)": "number", "objects/s": "number",
        "speedup vs loop": "number?", "total copies": "number",
        "matches loop": "bool?",
    },
    checks=(
        Check("every mode places the loop's copy sets", "matches loop",
              "is_true"),
        Check("serial engine >= 5x over the per-object loop",
              "speedup vs loop", "ge", value=5.0, rel_tol=TIME_BAND,
              where=(("mode", "engine serial"),), tiers=("artifact",)),
    ),
    smoke_params=dict(num_objects=48, n=60, chunk_size=16, jobs=[2],
                      compare_loop=True),
))

_register(GateSpec(
    experiment="E15",
    exp_id="E15",
    artifact="BENCH_e15_dynamic.json",
    headers=("section", "label", "events", "time (s)", "speedup",
             "total cost", "vs static", "agrees"),
    columns={
        "section": "str", "label": "str", "events": "number",
        "time (s)": "number?", "speedup": "number?",
        "total cost": "number", "vs static": "number?", "agrees": "bool?",
    },
    checks=(
        Check("vectorized replay bills the hop-by-hop amount", "agrees",
              "is_true", where=(("label", "vectorized"),)),
        Check("clairvoyant-static is its own baseline", "vs static",
              "approx", value=1.0, rel_tol=IDENTITY_TOL,
              where=(("label", "clairvoyant-static"),)),
        Check("epoch-replan bills a positive total", "total cost", "gt",
              value=0.0, where=(("label", "epoch-replan"),)),
        Check("vectorized replay >= 10x over hop-by-hop", "speedup", "ge",
              value=10.0, rel_tol=TIME_BAND,
              where=(("label", "vectorized"),), tiers=("artifact",)),
        Check("trajectory covers >= 10k events", "events", "ge",
              value=10_000.0, where=(("label", "vectorized"),),
              tiers=("artifact",)),
    ),
    smoke_params=dict(n=40, num_objects=6, epochs=3, requests_per_epoch=200,
                      compare_loop=True),
))

_register(GateSpec(
    experiment="E16",
    exp_id="E16",
    artifact="BENCH_e16_incremental.json",
    headers=("workload", "backend", "mode", "tolerance", "replaced/epoch",
             "epoch solve (s)", "speedup", "total cost", "vs full",
             "identical"),
    columns={
        "workload": "str", "backend": "str", "mode": "str",
        "tolerance": "number?", "replaced/epoch": "number",
        "epoch solve (s)": "number", "speedup": "number",
        "total cost": "number", "vs full": "number", "identical": "bool?",
    },
    checks=(
        Check("tolerance-0 incremental is bit-identical to full",
              "identical", "is_true",
              where=(("mode", "incremental"), ("tolerance", 0.0))),
        Check("tolerance-0 incremental bill equals the full bill",
              "vs full", "approx", value=1.0, rel_tol=IDENTITY_TOL,
              where=(("mode", "incremental"), ("tolerance", 0.0))),
        Check("incremental replan skips clean objects",
              "replaced/epoch", "le", value=24.0,
              where=(("mode", "incremental"), ("tolerance", 0.0)),
              tiers=("artifact",)),
        Check("incremental replan skips clean objects (smoke)",
              "replaced/epoch", "le", value=4.0,
              where=(("mode", "incremental"), ("tolerance", 0.0)),
              tiers=("smoke",)),
        Check("drifting-zipf incremental >= 5x per-epoch solve speedup",
              "speedup", "ge", value=5.0, rel_tol=TIME_BAND,
              where=(("workload", "drifting_zipf"), ("mode", "incremental"),
                     ("tolerance", 0.0)),
              tiers=("artifact",)),
    ),
    smoke_params=dict(n=40, num_objects=6, epochs=3, requests_per_epoch=240,
                      drift=0.34, tolerance=0.05, backends=["dense"],
                      scenarios=["drift"]),
))

_register(GateSpec(
    experiment="E17",
    exp_id="E17",
    artifact="BENCH_e17_scaling.json",
    headers=("section", "label", "impl", "time (s)", "speedup", "payload KB",
             "matches"),
    columns={
        "section": "str", "label": "str", "impl": "str",
        "time (s)": "number", "speedup": "number?",
        "payload KB": "number?", "matches": "bool?",
    },
    checks=(
        Check("every worker transport places the serial copy sets",
              "matches", "is_true", where=(("section", "placement"),)),
        Check("kernel dispatch is bit-identical to the numpy reference",
              "matches", "is_true", where=(("section", "kernel"),)),
        Check("shm handle payload is KBs, independent of network size",
              "payload KB", "le", value=64.0,
              where=(("label", "jobs=2 shm"),), tiers=("artifact",)),
        Check("pickled-instance payload is MBs -- what shm avoids shipping",
              "payload KB", "ge", value=1000.0,
              where=(("label", "jobs=2 pickle"),), tiers=("artifact",)),
    ),
    smoke_params=dict(num_objects=48, n=60, chunk_size=16, jobs=[2],
                      micro_rows=24, micro_repeats=1),
))

_register(GateSpec(
    experiment="E18",
    exp_id="E18",
    artifact="BENCH_e18_sharded.json",
    headers=("n", "backend", "mode", "shards", "portals", "time (s)",
             "total cost", "vs global", "identical", "admissible"),
    columns={
        "n": "number", "backend": "str", "mode": "str",
        "shards": "number?", "portals": "number?", "time (s)": "number",
        "total cost": "number", "vs global": "number?",
        "identical": "bool?", "admissible": "bool?",
    },
    checks=(
        Check("num_shards=1 reproduces the global copy sets bit-for-bit",
              "identical", "is_true", where=(("mode", "sharded k=1"),)),
        Check("the degenerate path's cost ratio is exactly 1",
              "vs global", "approx", value=1.0, rel_tol=IDENTITY_TOL,
              where=(("mode", "sharded k=1"),)),
        Check("portal-routed distances never undercut the true metric",
              "admissible", "is_true", where=(("mode", "sharded"),)),
        Check("sharded cost stays within 1.25x of the global solve",
              "vs global", "le", value=1.25,
              where=(("mode", "sharded"),)),
    ),
    smoke_params=dict(sizes=[120], sharded_only_sizes=[], num_objects=8,
                      num_shards=3, portals_per_shard=2,
                      admissibility_sample=24),
))

_register(GateSpec(
    experiment="E19",
    exp_id="E19",
    artifact="BENCH_e19_daemon.json",
    headers=("section", "label", "backend", "epochs", "replans",
             "replaced/epoch", "lookups", "mean lookup (ms)", "total cost",
             "vs replanner", "identical", "consistent"),
    columns={
        "section": "str", "label": "str", "backend": "str",
        "epochs": "number", "replans": "number",
        "replaced/epoch": "number", "lookups": "number?",
        "mean lookup (ms)": "number?", "total cost": "number",
        "vs replanner": "number?", "identical": "bool?",
        "consistent": "bool?",
    },
    checks=(
        Check("tolerance-0 daemon reproduces the replanner's placements",
              "identical", "is_true", where=(("section", "parity"),)),
        Check("tolerance-0 daemon bill equals the replanner bill",
              "vs replanner", "approx", value=1.0, rel_tol=IDENTITY_TOL,
              where=(("section", "parity"),)),
        Check("lookups during live replans never observe a mixed generation",
              "consistent", "is_true", where=(("section", "latency"),)),
        Check("consistency verdicts rest on real lookups",
              "lookups", "gt", value=0.0, where=(("section", "latency"),)),
        Check("drifting demand keeps triggering background replans",
              "replans", "gt", value=0.0, where=(("section", "lag"),)),
    ),
    smoke_params=dict(n=40, num_objects=6, epochs=3, requests_per_epoch=240,
                      drift=0.34, backends=["dense"],
                      lag_drifts=[0.34, 0.67], lookups=60),
))

_register(GateSpec(
    experiment="E20",
    exp_id="E20",
    artifact="BENCH_e20_costmodels.json",
    headers=("section", "label", "model", "total cost", "storage", "read",
             "update", "vs krw", "accepted", "rejected", "identical"),
    columns={
        "section": "str", "label": "str", "model": "str",
        "total cost": "number", "storage": "number", "read": "number",
        "update": "number", "vs krw": "number?", "accepted": "number?",
        "rejected": "number?", "identical": "bool?",
    },
    checks=(
        Check("krw seam bills match the legacy accounting bit-for-bit",
              "identical", "is_true", where=(("section", "parity"),)),
        Check("krw seam totals equal legacy totals",
              "vs krw", "approx", value=1.0, rel_tol=IDENTITY_TOL,
              where=(("section", "parity"),)),
        Check("uncapped admission equals the krw request bill",
              "vs krw", "approx", value=1.0, rel_tol=IDENTITY_TOL,
              where=(("label", "uncapped"),)),
        Check("uncapped admission rejects nothing",
              "rejected", "approx", value=0.0,
              where=(("label", "uncapped"),)),
        Check("capacity pressure rejects some reads",
              "rejected", "gt", value=0.0, where=(("label", "capped"),)),
        Check("capacity pressure still serves reads",
              "accepted", "gt", value=0.0, where=(("label", "capped"),)),
        Check("capped admission never bills more than krw",
              "vs krw", "le", value=1.0, rel_tol=IDENTITY_TOL,
              where=(("label", "capped"),)),
        Check("admission plan keeps the krw placement",
              "identical", "is_true", where=(("section", "admission"),)),
        Check("end-to-end admission bill equals krw (uncapped default)",
              "vs krw", "approx", value=1.0, rel_tol=IDENTITY_TOL,
              where=(("label", "plan admission"),)),
        Check("broadcast plan keeps the krw placement",
              "identical", "is_true", where=(("section", "broadcast"),)),
        Check("broadcast never bills more than krw",
              "vs krw", "le", value=1.0, rel_tol=IDENTITY_TOL,
              where=(("label", "plan broadcast"),)),
        Check("broadcast equals krw on read-only demand",
              "vs krw", "approx", value=1.0, rel_tol=IDENTITY_TOL,
              where=(("label", "read-only"),)),
    ),
    smoke_params=dict(n=40, num_objects=6, backends=["dense"], slots=3),
))

#: Default artifact location: the committed benchmarks directory.
DEFAULT_ARTIFACT_DIR = Path(__file__).resolve().parents[3] / "benchmarks"


# ----------------------------------------------------------------------
def run_gate(
    *,
    tier: str = "smoke",
    artifact_dir=None,
    store: TrialStore | None = None,
    only=None,
    jobs: int = 1,
    generated_at: str | None = None,
    progress=None,
) -> GateReport:
    """Check every gated experiment; returns the full report.

    ``tier="artifact"`` only validates the committed artifacts;
    ``tier="smoke"`` additionally runs each gate's budgeted smoke trial
    through the harness (cached in ``store`` when given) and applies
    the scale-free checks to the fresh result.  ``only`` restricts the
    run to a subset of experiment ids.
    """
    if tier not in ("artifact", "smoke"):
        raise ValueError(f"unknown gate tier {tier!r}; use 'artifact' or 'smoke'")
    artifact_dir = Path(
        DEFAULT_ARTIFACT_DIR if artifact_dir is None else artifact_dir
    )
    say = progress if progress is not None else (lambda _msg: None)
    wanted = (
        list(GATES) if not only
        else [name.upper() for name in only]
    )
    unknown = sorted(set(wanted) - set(GATES))
    if unknown:
        raise ValueError(
            f"no gate for experiment(s) {unknown}; gated: {', '.join(GATES)}"
        )

    report = GateReport()
    smoke_specs: list[GateSpec] = []
    for name in wanted:
        spec = GATES[name]
        path = artifact_dir / spec.artifact
        if not path.is_file():
            report.findings.append(Finding(
                spec.exp_id, "artifact", "artifact present", False,
                f"{path} is missing; re-run the benchmark to regenerate it",
                missing_artifact=True,
            ))
            continue
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            report.findings.append(Finding(
                spec.exp_id, "artifact", "artifact parses", False, str(exc)
            ))
            continue
        say(f"{spec.exp_id}: checking {spec.artifact}")
        report.findings.extend(check_payload(spec, payload, "artifact"))
        smoke_specs.append(spec)

    if tier == "smoke" and smoke_specs:
        store = store if store is not None else TrialStore(".repro-bench")
        trials = [spec.smoke_trial() for spec in smoke_specs]
        outcomes = run_sweep(
            trials, store, jobs=jobs, generated_at=generated_at,
            progress=progress,
        )
        for spec, outcome in zip(smoke_specs, outcomes):
            say(f"{spec.exp_id}: smoke trial {outcome.status}")
            report.findings.extend(
                check_payload(spec, outcome.record.result, "smoke")
            )
    return report


def mutate_payload(payload: dict, row: int, column_index: int, value) -> dict:
    """A deep copy of ``payload`` with one cell replaced -- the helper
    the golden tests use to prove the gate fails on perturbed artifacts."""
    clone = json.loads(json.dumps(payload))
    clone["rows"][row][column_index] = value
    return clone
