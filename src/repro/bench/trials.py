"""Declarative experiment trials: frozen configs behind canonical hashes.

A *trial* is one call of one experiment runner (:data:`E1..E16
<repro.bench.runner.EXPERIMENT_RUNNERS>`) with one fully-expanded kwargs
set; a *sweep* is a declared grid of them.  Both are plain frozen
declarations in the style of :class:`~repro.config.PlanConfig` -- they
ride the same ``to_dict`` / ``from_dict`` / ``from_file`` machinery
(:func:`repro.config.load_mapping` is the shared JSON/TOML loader) with
the same hard ``TypeError`` on unknown keys, so a typo in a sweep file
names itself instead of silently running a default.

The load-bearing piece is :func:`config_hash`: the disk cache of
:class:`~repro.bench.store.TrialStore` keys every result by the SHA-256
of the trial's *canonical JSON* form
(:func:`repro.serialize.canonical_json_dumps`: sorted keys, tuples
collapsed onto lists, numpy scalars unwrapped, ``-0.0`` folded onto
``0.0``).  The digest therefore depends only on the declared values --
never on dict insertion order, ``repr`` formatting, ``id()`` or the
process's hash seed -- which is what makes interrupted sweeps resumable
with bit-identical results (property-tested in
``tests/test_bench_trials.py``).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

from ..config import load_mapping
from ..serialize import canonical_json_dumps, canonical_payload

__all__ = ["TrialConfig", "SweepConfig", "config_hash"]

#: Length of the hex digest prefix used as the trial cache key.  64 bits
#: of SHA-256: collisions need ~2**32 distinct configs in one store, and
#: the store re-verifies the stored config on load anyway.
HASH_LEN = 16


def config_hash(data) -> str:
    """SHA-256 (first :data:`HASH_LEN` hex chars) of canonical JSON.

    ``data`` is any JSON-serializable value (typically a config dict);
    it is canonicalized first, so two equal values always digest
    identically regardless of key order, tuple/list spelling or numpy
    scalar types, in every process.
    """
    text = canonical_json_dumps(data, indent=None)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:HASH_LEN]


@dataclass(frozen=True)
class TrialConfig:
    """One experiment runner call, frozen in canonical form.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs
    with every value already in canonical JSON form -- build instances
    through :meth:`make` (keyword spelling) or :meth:`from_dict`
    (serialized spelling) rather than the raw constructor, which
    enforces exactly that normal form.  Equality is value equality;
    identity for caching purposes is :attr:`hash`.
    """

    experiment: str
    params: tuple = ()

    def __post_init__(self) -> None:
        if not isinstance(self.experiment, str) or not self.experiment:
            raise ValueError("experiment must be a non-empty string id")
        names = [name for name, _ in self.params]
        if names != sorted(names):
            raise ValueError("params must be sorted by name; use make()")
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate param(s) {dupes}")
        for name, value in self.params:
            if not isinstance(name, str) or not name:
                raise ValueError(f"param name {name!r} must be a string")
            if canonical_payload(value) != value:
                raise ValueError(
                    f"param {name}={value!r} is not in canonical form; "
                    "use make()"
                )

    # ------------------------------------------------------------------
    @classmethod
    def make(cls, experiment: str, **params) -> "TrialConfig":
        """Build from keyword params, canonicalizing every value."""
        canon = canonical_payload(params)
        return cls(
            experiment=str(experiment).upper(),
            params=tuple(sorted(canon.items())),
        )

    # ------------------------------------------------------------------
    @property
    def params_dict(self) -> dict:
        """The params as a plain kwargs dict (values canonical)."""
        return {name: value for name, value in self.params}

    @property
    def hash(self) -> str:
        """The canonical config hash -- the trial's cache key."""
        return config_hash(self.to_dict())

    def label(self) -> str:
        """Short human identity: ``E14[a1b2c3d4e5f6a7b8]``."""
        return f"{self.experiment}[{self.hash}]"

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"experiment": self.experiment, "params": self.params_dict}

    @classmethod
    def from_dict(cls, data: dict) -> "TrialConfig":
        unknown = sorted(set(data) - {"experiment", "params"})
        if unknown:
            raise TypeError(
                f"unknown TrialConfig key(s) {unknown}; known keys: "
                "['experiment', 'params']"
            )
        if "experiment" not in data:
            raise TypeError("TrialConfig needs an 'experiment' key")
        return cls.make(data["experiment"], **dict(data.get("params") or {}))


@dataclass(frozen=True)
class SweepConfig:
    """A named grid of trials, loadable from the same JSON/TOML formats
    as :class:`~repro.config.PlanConfig`.

    Serialized form::

        {
          "name": "nightly",
          "experiments": [
            {"experiment": "E14",
             "params": {"n": 60, "compare_loop": true},
             "grid": {"num_objects": [48, 96], "chunk_size": [16, 32]}}
          ]
        }

    ``params`` are fixed kwargs shared by every grid point; ``grid``
    maps param names to value lists and is expanded as a cartesian
    product.  Expansion order is deterministic (entries in declaration
    order, grid keys sorted, values in declaration order), so a sweep's
    trial sequence -- and therefore the resume behavior of an
    interrupted run -- is a pure function of the file.
    """

    name: str
    entries: tuple = ()

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("sweep name must be a non-empty string")
        for entry in self.entries:
            experiment, params, grid = entry
            if not isinstance(experiment, str) or not experiment:
                raise ValueError("each sweep entry needs an experiment id")
            overlap = sorted(set(dict(params)) & set(dict(grid)))
            if overlap:
                raise ValueError(
                    f"{experiment}: param(s) {overlap} appear in both "
                    "'params' and 'grid'"
                )
            for key, values in grid:
                if not isinstance(values, list) or not values:
                    raise ValueError(
                        f"{experiment}: grid key {key!r} must map to a "
                        "non-empty list of values"
                    )

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "SweepConfig":
        unknown = sorted(set(data) - {"name", "experiments"})
        if unknown:
            raise TypeError(
                f"unknown SweepConfig key(s) {unknown}; known keys: "
                "['experiments', 'name']"
            )
        entries = []
        for raw in data.get("experiments", ()):
            extra = sorted(set(raw) - {"experiment", "params", "grid"})
            if extra:
                raise TypeError(
                    f"unknown sweep entry key(s) {extra}; known keys: "
                    "['experiment', 'grid', 'params']"
                )
            if "experiment" not in raw:
                raise TypeError("every sweep entry needs an 'experiment' key")
            params = canonical_payload(dict(raw.get("params") or {}))
            grid = canonical_payload(dict(raw.get("grid") or {}))
            entries.append(
                (
                    str(raw["experiment"]).upper(),
                    tuple(sorted(params.items())),
                    tuple(sorted(grid.items())),
                )
            )
        return cls(name=str(data.get("name", "sweep")), entries=tuple(entries))

    @classmethod
    def from_file(cls, path) -> "SweepConfig":
        """Load from ``*.json`` or ``*.toml`` (shared config loader)."""
        return cls.from_dict(load_mapping(path))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "experiments": [
                {
                    "experiment": experiment,
                    "params": dict(params),
                    "grid": dict(grid),
                }
                for experiment, params, grid in self.entries
            ],
        }

    # ------------------------------------------------------------------
    def trials(self) -> list[TrialConfig]:
        """Expand every entry's grid into concrete trial configs."""
        out: list[TrialConfig] = []
        for experiment, params, grid in self.entries:
            fixed = dict(params)
            keys = [key for key, _ in grid]
            value_lists = [values for _, values in grid]
            for combo in itertools.product(*value_lists):
                kwargs = dict(fixed)
                kwargs.update(zip(keys, combo))
                out.append(TrialConfig.make(experiment, **kwargs))
        return out
