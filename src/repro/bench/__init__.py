"""``repro.bench``: the declarative experiment harness and its gate.

Three layers, bottom-up:

* :mod:`~repro.bench.trials` -- frozen :class:`TrialConfig` /
  :class:`SweepConfig` declarations with canonical config hashes;
* :mod:`~repro.bench.store` / :mod:`~repro.bench.runner` -- the disk
  cache and the cached, resumable, process-parallel sweep executor over
  the E1--E16 runners (:data:`EXPERIMENT_RUNNERS`);
* :mod:`~repro.bench.gate` -- the BENCH regression gate: committed
  ``benchmarks/BENCH_*.json`` artifacts validated by schema and
  tolerance-banded checks, plus budgeted smoke re-runs.

CLI surface: ``python -m repro bench run | gate | list``.
"""

from .gate import (
    EXIT_MISSING_ARTIFACT,
    EXIT_OK,
    EXIT_REGRESSION,
    GATES,
    Check,
    Finding,
    GateReport,
    GateSpec,
    check_payload,
    run_gate,
    validate_schema,
)
from .runner import EXPERIMENT_RUNNERS, TrialOutcome, run_sweep, run_trial
from .store import TrialRecord, TrialStore
from .trials import SweepConfig, TrialConfig, config_hash

__all__ = [
    "TrialConfig",
    "SweepConfig",
    "config_hash",
    "TrialRecord",
    "TrialStore",
    "EXPERIMENT_RUNNERS",
    "TrialOutcome",
    "run_trial",
    "run_sweep",
    "Check",
    "GateSpec",
    "Finding",
    "GateReport",
    "GATES",
    "check_payload",
    "validate_schema",
    "run_gate",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "EXIT_MISSING_ARTIFACT",
]
