"""The trial cache: one canonical JSON file per completed trial.

Layout: ``<root>/<config_hash>.json``, each file a self-describing
record holding the trial's config, its result table
(:meth:`~repro.analysis.experiments.ExperimentResult.to_json` form) and
run metadata.  Records are written atomically (tempfile +
``os.replace``), so a sweep killed mid-trial never leaves a torn file --
every record present is complete, and a rerun resumes by loading it
byte-for-byte instead of re-running the trial.

Determinism contract: the record's ``result`` payload is canonical JSON
of a deterministic experiment run, so for seeded runners the *result*
bytes of a resumed sweep equal those of an uninterrupted one exactly.
Wall-clock metadata (``elapsed_s``, caller-injected ``generated_at``)
lives outside the result payload precisely so that comparison stays
meaningful.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..serialize import canonical_json_dumps
from .trials import TrialConfig

__all__ = ["TrialRecord", "TrialStore"]

_FORMAT = "repro-bench-trial"
_VERSION = 1


@dataclass(frozen=True)
class TrialRecord:
    """One cached trial: config, result payload and run metadata."""

    config: TrialConfig
    result: dict
    elapsed_s: float
    generated_at: str | None = None

    @property
    def result_bytes(self) -> bytes:
        """The canonical bytes of the result payload alone -- the part
        of a record that is bit-identical across (deterministic)
        re-runs, wall-clock metadata excluded."""
        return canonical_json_dumps(self.result, indent=None).encode("utf-8")

    def to_experiment_result(self):
        """Rebuild an :class:`~repro.analysis.ExperimentResult` for
        rendering (JSON loses tuple-ness, nothing else)."""
        from ..analysis import ExperimentResult

        return ExperimentResult(
            exp_id=self.result["exp_id"],
            title=self.result["title"],
            headers=tuple(self.result["headers"]),
            rows=[list(row) for row in self.result["rows"]],
            notes=self.result.get("notes", ""),
        )


class TrialStore:
    """Disk-backed, resumable cache of trial results keyed by config hash."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    def path_for(self, config: TrialConfig) -> Path:
        return self.root / f"{config.hash}.json"

    def __contains__(self, config: TrialConfig) -> bool:
        return self.path_for(config).is_file()

    def __len__(self) -> int:
        return len(list(self.root.glob("*.json"))) if self.root.is_dir() else 0

    # ------------------------------------------------------------------
    def save(self, record: TrialRecord) -> Path:
        """Atomically persist ``record``; returns its path.

        The write goes to a sibling tempfile first and lands via
        ``os.replace``, so a concurrent or interrupted writer can never
        expose a half-written record to a resuming run.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(record.config)
        payload = {
            "format": _FORMAT,
            "version": _VERSION,
            "config": record.config.to_dict(),
            "config_hash": record.config.hash,
            "result": record.result,
            "elapsed_s": float(record.elapsed_s),
            "generated_at": record.generated_at,
        }
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=f".{record.config.hash}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(canonical_json_dumps(payload) + "\n")
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    # ------------------------------------------------------------------
    def load(self, config: TrialConfig) -> TrialRecord | None:
        """The cached record for ``config``, or ``None`` when absent.

        A present-but-inconsistent record (wrong format, or a stored
        config that no longer hashes to its own filename -- a hand-edit
        or corruption) raises ``ValueError`` instead of being silently
        trusted or re-run.
        """
        path = self.path_for(config)
        if not path.is_file():
            return None
        record = self._read(path)
        if record.config != config:
            raise ValueError(
                f"trial store record {path} holds config "
                f"{record.config.label()}, not the requested "
                f"{config.label()}; the store is corrupt"
            )
        return record

    def records(self) -> list[TrialRecord]:
        """Every cached record, sorted by config hash (for listings)."""
        if not self.root.is_dir():
            return []
        return [self._read(p) for p in sorted(self.root.glob("*.json"))]

    # ------------------------------------------------------------------
    def _read(self, path: Path) -> TrialRecord:
        data = json.loads(path.read_text())
        if not isinstance(data, dict) or data.get("format") != _FORMAT:
            raise ValueError(f"{path} is not a {_FORMAT} record")
        if data.get("version") != _VERSION:
            raise ValueError(
                f"{path} has record version {data.get('version')!r}; "
                f"this build reads version {_VERSION}"
            )
        config = TrialConfig.from_dict(data["config"])
        if data.get("config_hash") != config.hash:
            raise ValueError(
                f"{path}: stored config hashes to {config.hash}, not the "
                f"recorded {data.get('config_hash')!r}; the record was "
                "edited or corrupted"
            )
        return TrialRecord(
            config=config,
            result=data["result"],
            elapsed_s=float(data["elapsed_s"]),
            generated_at=data.get("generated_at"),
        )
