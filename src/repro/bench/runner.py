"""Run trials and sweeps: cached, resumable, optionally process-parallel.

:data:`EXPERIMENT_RUNNERS` is the one experiment registry (the CLI's
``experiment`` command rides it too): E-series id -> size-parameterized
runner in :mod:`repro.analysis.experiments`.  :func:`run_trial` calls
one runner with a :class:`~repro.bench.trials.TrialConfig`'s params;
:func:`run_sweep` drives a whole grid against a
:class:`~repro.bench.store.TrialStore`:

* trials whose config hash is already cached are *loaded*, never
  re-run -- an interrupted sweep resumed later completes only the
  remaining trials, and the cached results come back byte-identical;
* each completed trial is persisted immediately (atomically), so the
  resume point is always the last *finished* trial, not the last batch;
* ``jobs > 1`` fans uncached trials over a process pool -- the same
  ``ProcessPoolExecutor`` shape the placement engine uses for object
  chunks, one trial per task.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

from .. import analysis
from .store import TrialRecord, TrialStore
from .trials import SweepConfig, TrialConfig

__all__ = ["EXPERIMENT_RUNNERS", "run_trial", "run_sweep", "TrialOutcome"]

#: E-series id -> runner.  Keys are upper-case (``TrialConfig.make``
#: upper-cases its experiment id to match).
EXPERIMENT_RUNNERS = {
    "E1": analysis.run_e1_approx_ratio,
    "E2": analysis.run_e2_tree_dp,
    "E3": analysis.run_e3_restricted_gap,
    "E4": analysis.run_e4_proper_invariants,
    "E5": analysis.run_e5_phase_ablation,
    "E6": analysis.run_e6_baselines,
    "E7": analysis.run_e7_storage_sweep,
    "E8": analysis.run_e8_facility_choice,
    "E9": analysis.run_e9_load_model,
    "E10": analysis.run_e10_scalability,
    "E10B": analysis.run_e10_backend_sweep,
    "E11": analysis.run_e11_simulation_agreement,
    "E12": analysis.run_e12_online_vs_static,
    "E13": analysis.run_e13_capacity_price,
    "E14": analysis.run_e14_catalog_throughput,
    "E15": analysis.run_e15_dynamic_replay,
    "E16": analysis.run_e16_incremental_replan,
    "E17": analysis.run_e17_scaling,
    "E18": analysis.run_e18_sharded,
    "E19": analysis.run_e19_daemon,
    "E20": analysis.run_e20_costmodels,
}


def run_trial(config: TrialConfig) -> "analysis.ExperimentResult":
    """Execute one trial (no cache involved); returns the result table."""
    runner = EXPERIMENT_RUNNERS.get(config.experiment)
    if runner is None:
        raise ValueError(
            f"unknown experiment {config.experiment!r}; choose from "
            f"{', '.join(EXPERIMENT_RUNNERS)}"
        )
    # JSON canonicalization turned tuples into lists; runners take
    # Sequence kwargs, so the params pass through unchanged.
    return runner(**config.params_dict)


def _run_trial_worker(config_dict: dict) -> tuple[dict, float]:
    """Pool task: rebuild the config, run it, ship back plain JSON."""
    config = TrialConfig.from_dict(config_dict)
    t0 = time.perf_counter()
    result = run_trial(config)
    return result.to_json(), time.perf_counter() - t0


@dataclass(frozen=True)
class TrialOutcome:
    """One sweep slot: the trial, its record, and how it was obtained.

    ``status`` is ``"cached"`` (loaded from the store), ``"ran"``
    (executed this call) or ``"pending"`` (left unrun because the
    ``limit`` budget was exhausted; ``record`` is then ``None``).
    """

    config: TrialConfig
    status: str
    record: TrialRecord | None


def run_sweep(
    sweep,
    store: TrialStore,
    *,
    jobs: int = 1,
    limit: int | None = None,
    generated_at: str | None = None,
    progress=None,
) -> list[TrialOutcome]:
    """Run (or resume) a sweep against a trial store.

    Parameters
    ----------
    sweep:
        A :class:`~repro.bench.trials.SweepConfig` or an explicit
        sequence of :class:`~repro.bench.trials.TrialConfig`.
    store:
        Completed trials land here immediately; trials already present
        are loaded instead of re-run (the resume path).
    jobs:
        Process-pool width for the uncached trials (1 = in-process).
    limit:
        Execute at most this many *new* trials this call (cached loads
        are free); the rest come back as ``"pending"``.  This is the
        budgeted-tier knob and doubles as a deterministic way to
        exercise interruption in tests.
    generated_at:
        Caller-injected timestamp recorded on new records; the runner
        itself never reads the clock into an artifact.
    progress:
        Optional ``callable(str)`` for one-line status messages.

    Outcomes are returned in the sweep's deterministic trial order,
    whatever order the pool finished in.
    """
    trials = sweep.trials() if isinstance(sweep, SweepConfig) else list(sweep)
    if jobs < 1:
        raise ValueError("jobs must be positive")
    if limit is not None and limit < 0:
        raise ValueError("limit must be non-negative (or None)")
    say = progress if progress is not None else (lambda _msg: None)

    outcomes: dict[int, TrialOutcome] = {}
    pending: list[tuple[int, TrialConfig]] = []
    budget = len(trials) if limit is None else limit
    for i, config in enumerate(trials):
        record = store.load(config)
        if record is not None:
            outcomes[i] = TrialOutcome(config, "cached", record)
            say(f"{config.label()}: cached")
        elif len(pending) < budget:
            pending.append((i, config))
        else:
            outcomes[i] = TrialOutcome(config, "pending", None)
            say(f"{config.label()}: pending (limit reached)")

    def finish(i: int, config: TrialConfig, payload: dict, elapsed: float):
        record = TrialRecord(
            config=config,
            result=payload,
            elapsed_s=elapsed,
            generated_at=generated_at,
        )
        store.save(record)
        outcomes[i] = TrialOutcome(config, "ran", record)
        say(f"{config.label()}: ran in {elapsed:.2f}s")

    if jobs == 1 or len(pending) <= 1:
        for i, config in pending:
            payload, elapsed = _run_trial_worker(config.to_dict())
            finish(i, config, payload, elapsed)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(_run_trial_worker, config.to_dict()): (i, config)
                for i, config in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for fut in done:
                    i, config = futures[fut]
                    payload, elapsed = fut.result()
                    finish(i, config, payload, elapsed)

    return [outcomes[i] for i in range(len(trials))]
